#include "services/replication.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace storm::services {

namespace {

// Journal record framing for the service's two NVRAM streams. The
// version map and write intents are tiny fixed-shape records; a torn
// tail is discarded by the journal's CRC framing before we ever see it.
constexpr std::uint8_t kRecIntent = 1;
constexpr std::uint8_t kRecState = 2;

void push_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void push_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void push_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void push_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

struct RecordReader {
  const Bytes& bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() { return static_cast<std::uint8_t>(u(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(u(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(u(4)); }
  std::uint64_t u64() { return u(8); }
  std::string str(std::size_t n) {
    if (pos + n > bytes.size()) {
      ok = false;
      return {};
    }
    std::string s(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return s;
  }

 private:
  std::uint64_t u(std::size_t n) {
    if (pos + n > bytes.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
    }
    pos += n;
    return v;
  }
};

}  // namespace

const char* to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::kLive:
      return "live";
    case ReplicaState::kDegraded:
      return "degraded";
    case ReplicaState::kRebuilding:
      return "rebuilding";
  }
  return "?";
}

ReplicationService::ReplicationService(
    std::vector<std::string> replica_volumes, AttachFn attach,
    ReplicationConfig config)
    : replica_volumes_(std::move(replica_volumes)),
      attach_(std::move(attach)), config_(config) {}

void ReplicationService::bind_host(const core::ServiceHost& host) {
  executor_ = host.executor;
  scope_ = host.scope;
  if (host.journal != nullptr && journal_ == nullptr) {
    journal_ = host.journal;
    intent_stream_ = journal::Stream(*journal_);
    state_stream_ = journal::Stream(*journal_);
  }
}

void ReplicationService::initialize(std::function<void(Status)> ready) {
  if (replica_volumes_.empty()) {
    ready(Status::ok());
    return;
  }
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, ready, step](std::size_t index) {
    if (index == replica_volumes_.size()) {
      ready(Status::ok());
      return;
    }
    attach_(replica_volumes_[index],
            [this, ready, step, index](Status status,
                                       block::BlockDevice* device) {
              if (!status.is_ok()) {
                ready(status);
                return;
              }
              auto replica = std::make_unique<Replica>();
              replica->volume = replica_volumes_[index];
              replica->device = device;
              replica->version = set_version_;
              replicas_.push_back(std::move(replica));
              (*step)(index + 1);
            });
  };
  (*step)(0);
}

std::size_t ReplicationService::live_replicas() const {
  std::size_t live = 0;
  for (const auto& replica : replicas_) {
    if (replica->state == ReplicaState::kLive && replica->device != nullptr &&
        !replica->device_dead) {
      ++live;
    }
  }
  return live;
}

std::uint64_t ReplicationService::rebuild_backlog_sectors() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->dirty.sectors();
  return total;
}

void ReplicationService::update_backlog_gauge() {
  scope_.gauge("replication.rebuild_backlog_sectors")
      .set(static_cast<std::int64_t>(rebuild_backlog_sectors()));
}

void ReplicationService::attach_spare(const std::string& volume) {
  auto replica = std::make_unique<Replica>();
  replica->volume = volume;
  replica->state = ReplicaState::kDegraded;
  replica->device_dead = true;  // health probe attaches it
  replica->dirty = written_;    // owes everything ever written
  replicas_.push_back(std::move(replica));
  persist_state();
  update_backlog_gauge();
}

// ------------------------------------------------------------ data path

core::ServiceVerdict ReplicationService::on_pdu(core::ServiceContext& ctx,
                                                core::Direction dir,
                                                iscsi::Pdu& pdu) {
  last_ctx_ = &ctx;
  return dir == core::Direction::kToTarget ? on_to_target(ctx, pdu)
                                           : on_to_initiator(ctx, pdu);
}

core::ServiceVerdict ReplicationService::on_to_target(
    core::ServiceContext& ctx, iscsi::Pdu& pdu) {
  core::ServiceVerdict verdict;
  if (pdu.opcode == iscsi::Opcode::kScsiCommand && pdu.is_read()) {
    verdict.cpu_cost = config_.per_io;
    // Round-robin across primary + up-to-date replicas for aggregate
    // read throughput. Slot 0 is the primary (forward unchanged).
    std::size_t readable = 0;
    for (const auto& replica : replicas_) {
      if (replica->state == ReplicaState::kLive &&
          replica->device != nullptr && !replica->device_dead) {
        ++readable;
      }
    }
    std::size_t choice = round_robin_++ % (1 + readable);
    if (choice == 0) {
      ++reads_primary_;
      tracker_.on_to_target(pdu);
      return verdict;  // forwarded to the primary volume
    }
    std::size_t seen = 0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const Replica& replica = *replicas_[i];
      if (replica.state != ReplicaState::kLive || replica.device == nullptr ||
          replica.device_dead) {
        continue;
      }
      if (++seen == choice) {
        serve_read_from_replica(i, pdu, ctx);
        verdict.consume = true;
        return verdict;
      }
    }
    ++reads_primary_;
    return verdict;  // no readable replica found: primary serves
  }

  if (auto burst = tracker_.on_to_target(pdu)) {
    verdict.cpu_cost = config_.per_io;
    handle_write_burst(ctx, pdu.task_tag, *burst);
  }
  return verdict;
}

core::ServiceVerdict ReplicationService::on_to_initiator(
    core::ServiceContext& ctx, iscsi::Pdu& pdu) {
  (void)ctx;
  core::ServiceVerdict verdict;

  if (pdu.opcode == iscsi::Opcode::kDataIn) {
    auto it = primary_reads_.find(pdu.task_tag);
    if (it != primary_reads_.end()) {
      // Data for a rebuild read the service injected toward the primary:
      // collect it; never forward (the tenant never issued this tag).
      pdu.data.append_to(it->second.data);
      verdict.consume = true;
      verdict.cpu_cost = config_.per_io;
    }
    return verdict;
  }

  if (pdu.opcode != iscsi::Opcode::kScsiResponse) return verdict;

  auto pr = primary_reads_.find(pdu.task_tag);
  if (pr != primary_reads_.end()) {
    PrimaryRead read = std::move(pr->second);
    primary_reads_.erase(pr);
    verdict.consume = true;
    verdict.cpu_cost = config_.per_io;
    if (pdu.status == iscsi::kStatusGood &&
        read.data.size() >= read.expected) {
      read.done(Status::ok(), std::move(read.data));
    } else {
      read.done(error(ErrorCode::kIoError, "primary rebuild read failed"),
                Bytes{});
    }
    return verdict;
  }

  tracker_.on_response(pdu.task_tag);

  auto pit = pending_.find(pdu.task_tag);
  if (pit == pending_.end()) return verdict;
  PendingWrite& pw = pit->second;
  pw.primary_seen = true;
  verdict.cpu_cost = config_.per_io;
  if (pdu.status != iscsi::kStatusGood) {
    // The primary failed the write: no replica quorum can make it
    // durable where it counts. Release the failure as-is — unless the
    // commit already early-ACKed, in which case the relay journal's
    // replay guarantee owns the outcome and the late failure is
    // suppressed like any duplicate response.
    ++quorum_failures_;
    scope_.counter("replication.quorum_failures").add();
    if (pw.responded) {
      verdict.consume = true;
    } else {
      pw.responded = true;
    }
    if (pw.outstanding == 0) pending_.erase(pit);
    return verdict;
  }
  pw.primary_acked = true;
  pw.have_primary_response = true;
  pw.primary_response = pdu;
  // Uniform release: the original is consumed here and maybe_commit
  // injects the held copy once the quorum is met (possibly right now).
  verdict.consume = true;
  maybe_commit(pdu.task_tag);
  return verdict;
}

// -------------------------------------------------------------- writes

void ReplicationService::handle_write_burst(
    core::ServiceContext& ctx, std::uint32_t task_tag,
    const IoTracker::WriteBurst& burst) {
  const std::uint64_t version = ++set_version_;
  const std::uint64_t begin = burst.lba;
  const std::uint64_t sectors = burst.expected / block::kSectorSize;
  const std::uint64_t end = begin + sectors;
  written_.add(begin, end);
  journal_intent(version, begin, static_cast<std::uint32_t>(sectors));

  // Plan dispatch before touching any device: a replica ack must find
  // the quorum/trim bookkeeping already in place.
  std::vector<std::size_t> live_targets;
  std::vector<std::size_t> passthrough_targets;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Replica& replica = *replicas_[i];
    if (replica.device == nullptr || replica.device_dead) {
      replica.dirty.add(begin, end);
      continue;
    }
    switch (replica.state) {
      case ReplicaState::kLive:
        live_targets.push_back(i);
        break;
      case ReplicaState::kRebuilding: {
        // Write-through keeps a rebuilding copy from falling further
        // behind — but a write overlapping the chunk in flight (or one
        // still owed) must be re-planned as dirty, or the in-flight
        // copy's pre-write bytes would clobber it.
        auto [active_begin, active_end] =
            replica.machine ? replica.machine->active_chunk()
                            : std::make_pair(std::uint64_t{0},
                                             std::uint64_t{0});
        const bool overlaps_active =
            active_begin < active_end && begin < active_end &&
            active_begin < end;
        if (overlaps_active || replica.dirty.intersects(begin, end)) {
          replica.dirty.add(begin, end);
        } else {
          passthrough_targets.push_back(i);
        }
        break;
      }
      case ReplicaState::kDegraded:
        replica.dirty.add(begin, end);
        break;
    }
  }

  note_intent_open(version, static_cast<std::uint32_t>(
                                live_targets.size() +
                                passthrough_targets.size()));

  if (config_.quorum.enabled) {
    PendingWrite pw;
    pw.version = version;
    pw.ctx = &ctx;
    pw.started = now();
    pw.outstanding = static_cast<std::uint32_t>(live_targets.size());
    // W counts the primary. When copies are already short, commit at
    // what the set can still deliver instead of failing the write.
    pw.required = std::min<std::uint32_t>(
        config_.quorum.write_quorum,
        static_cast<std::uint32_t>(1 + live_targets.size()));
    if (pw.required < config_.quorum.write_quorum) {
      ++quorum_degraded_commits_;
      scope_.counter("replication.quorum_degraded_commits").add();
    }
    pending_[task_tag] = std::move(pw);
  }

  for (std::size_t i : live_targets) {
    dispatch_replica_write(i, version, begin, end, burst.data,
                           config_.quorum.enabled, task_tag);
  }
  for (std::size_t i : passthrough_targets) {
    dispatch_replica_write(i, version, begin, end, burst.data, false,
                           task_tag);
  }

  ++writes_replicated_;
  scope_.counter("replication.writes_replicated").add();
  update_backlog_gauge();
}

void ReplicationService::dispatch_replica_write(
    std::size_t i, std::uint64_t version, std::uint64_t begin,
    std::uint64_t end, const Bytes& data, bool counts_quorum,
    std::uint32_t task_tag) {
  Replica& replica = *replicas_[i];
  const std::uint64_t generation = replica.generation;
  const std::uint64_t epoch = service_epoch_;
  // Each replica's iSCSI session is a FIFO byte stream, so all copies
  // apply the same write sequence (the consistency requirement in
  // §V-B3) and a copy's version advances monotonically.
  replica.device->write(
      begin, Bytes(data),
      [this, i, generation, epoch, version, begin, end, counts_quorum,
       task_tag](Status status) {
        if (epoch != service_epoch_) return;
        Replica& replica = *replicas_[i];
        if (status.is_ok()) {
          if (generation == replica.generation &&
              replica.state != ReplicaState::kDegraded &&
              version > replica.version) {
            replica.version = version;
          }
        } else if (generation == replica.generation) {
          replica.device_dead = true;
          replica.dirty.add(begin, end);
          if (replica.state != ReplicaState::kDegraded) {
            degrade(i, "write error");
          }
        }
        resolve_intent(version);
        if (counts_quorum) resolve_quorum_ack(task_tag, status.is_ok());
      });
}

void ReplicationService::resolve_quorum_ack(std::uint32_t task_tag,
                                            bool ok) {
  auto it = pending_.find(task_tag);
  if (it == pending_.end()) return;
  PendingWrite& pw = it->second;
  if (pw.outstanding > 0) --pw.outstanding;
  if (ok) ++pw.acks;
  maybe_commit(task_tag);
}

void ReplicationService::maybe_commit(std::uint32_t task_tag) {
  auto it = pending_.find(task_tag);
  if (it == pending_.end()) return;
  PendingWrite& pw = it->second;
  const std::uint32_t primary_potential =
      pw.primary_seen ? (pw.primary_acked ? 1u : 0u) : 1u;
  const std::uint32_t current = pw.acks + (pw.primary_acked ? 1u : 0u);
  const std::uint32_t attainable =
      pw.acks + pw.outstanding + primary_potential;
  if (!pw.responded && attainable < pw.required) {
    // Copies died under the write: lower the bar to what is still
    // attainable (counted) rather than failing the tenant's write.
    pw.required = std::max<std::uint32_t>(attainable, 1);
    ++quorum_degraded_commits_;
    scope_.counter("replication.quorum_degraded_commits").add();
  }
  if (!pw.responded && current >= pw.required) {
    pw.responded = true;
    ++quorum_commits_;
    scope_.counter("replication.quorum_commits").add();
    scope_.histogram("replication.quorum_latency_ns")
        .record(static_cast<std::int64_t>(now() - pw.started));
    iscsi::Pdu response =
        pw.have_primary_response
            ? pw.primary_response
            : iscsi::make_scsi_response(task_tag, iscsi::kStatusGood);
    if (pw.ctx != nullptr) pw.ctx->inject_to_initiator(std::move(response));
  }
  if (pw.responded && pw.outstanding == 0 && pw.primary_seen) {
    pending_.erase(it);
  }
}

// --------------------------------------------------------------- reads

void ReplicationService::serve_read_from_replica(std::size_t i,
                                                 const iscsi::Pdu& command,
                                                 core::ServiceContext& ctx) {
  Replica& replica = *replicas_[i];
  const std::uint64_t generation = replica.generation;
  const std::uint64_t epoch = service_epoch_;
  const std::uint64_t dispatch_version = set_version_;
  const std::uint32_t sectors = command.transfer_length / block::kSectorSize;
  replica.device->read(
      command.lba, sectors,
      [this, i, generation, epoch, dispatch_version, command,
       &ctx](Status status, Bytes data) {
        // A relay crash invalidated `ctx`; the initiator re-issues the
        // command after restart and it re-traverses the service.
        if (epoch != service_epoch_) return;
        Replica& replica = *replicas_[i];
        if (!status.is_ok()) {
          if (generation == replica.generation) {
            replica.device_dead = true;
            if (replica.state == ReplicaState::kLive) {
              degrade(i, "read error");
            }
          }
          ++reads_failed_over_;
          reserve_from_primary(ctx, command);
          return;
        }
        if (generation != replica.generation ||
            replica.state != ReplicaState::kLive ||
            replica.version < dispatch_version) {
          // The copy degraded (or fell behind the version map) while the
          // read was in flight: its bytes may predate acknowledged
          // writes. Discard and re-serve from the primary.
          ++stale_reads_prevented_;
          scope_.counter("replication.stale_reads_prevented").add();
          ++reads_failed_over_;
          reserve_from_primary(ctx, command);
          return;
        }
        // Counted on successful completion only: a read that failed over
        // must not also count as served-from-replica.
        ++reads_replica_;
        scope_.counter("replication.reads_from_replicas").add();
        Buf whole(std::move(data));
        std::uint32_t offset = 0;
        while (offset < whole.size()) {
          std::uint32_t n = std::min<std::uint32_t>(
              iscsi::kMaxDataSegment,
              static_cast<std::uint32_t>(whole.size()) - offset);
          ctx.inject_to_initiator(iscsi::make_data_in(
              command.task_tag, offset, whole.slice(offset, n),
              offset + n == whole.size()));
          offset += n;
        }
        ctx.inject_to_initiator(iscsi::make_scsi_response(
            command.task_tag, iscsi::kStatusGood));
      });
}

void ReplicationService::reserve_from_primary(core::ServiceContext& ctx,
                                              const iscsi::Pdu& command) {
  // Failover: the unfinished read is served by re-injecting the command
  // toward the primary volume. Its response flows back untouched (the
  // tag is tracked by neither pending_ nor primary_reads_).
  iscsi::Pdu retry = command;
  retry.data = Buf{};
  ctx.inject_to_target(retry);
}

// ------------------------------------------------------ failure/rebuild

void ReplicationService::degrade(std::size_t i, const char* why) {
  Replica& replica = *replicas_[i];
  if (replica.state == ReplicaState::kDegraded) return;
  const bool was_live = replica.state == ReplicaState::kLive;
  replica.state = ReplicaState::kDegraded;
  ++replica.generation;
  if (replica.machine) replica.machine->halt();
  if (was_live) ++failovers_;
  scope_.counter("replication.replica_degraded").add();
  log_warn("replication") << "replica " << replica.volume << " degraded ("
                          << why << "), version " << replica.version << "/"
                          << set_version_;
  persist_state();
  update_backlog_gauge();
}

void ReplicationService::on_health_probe(sim::Time /*now*/) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Replica& replica = *replicas_[i];
    switch (replica.state) {
      case ReplicaState::kDegraded:
        if (replica.device_dead || replica.device == nullptr) {
          try_reattach(i);
        } else {
          start_rebuild(i);
        }
        break;
      case ReplicaState::kRebuilding:
        // A machine stalls when no source was available; re-kick it on
        // the health cadence.
        if (replica.machine && !replica.machine->halted() &&
            !replica.machine->in_flight() && !replica.dirty.empty()) {
          replica.machine->kick();
        }
        break;
      case ReplicaState::kLive:
        break;
    }
  }
  update_backlog_gauge();
}

void ReplicationService::try_reattach(std::size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.attaching || !attach_) return;
  replica.attaching = true;
  const std::uint64_t epoch = service_epoch_;
  attach_(replica.volume,
          [this, i, epoch](Status status, block::BlockDevice* device) {
            if (epoch != service_epoch_) return;
            Replica& replica = *replicas_[i];
            replica.attaching = false;
            if (!status.is_ok() || device == nullptr) return;  // next probe
            replica.device = device;
            replica.device_dead = false;
            scope_.counter("replication.replica_reattached").add();
            log_info("replication")
                << "replica " << replica.volume << " re-attached; "
                << replica.dirty.sectors() << " dirty sectors to rebuild";
            start_rebuild(i);
          });
}

void ReplicationService::start_rebuild(std::size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.device == nullptr || replica.device_dead) return;
  if (replica.dirty.empty()) {
    // Nothing missed: the version-map match is immediate.
    replica.state = ReplicaState::kLive;
    replica.version = set_version_;
    persist_state();
    return;
  }
  replica.state = ReplicaState::kRebuilding;
  replica.rebuild_started = now();
  if (!replica.pacer) {
    replica.pacer = std::make_unique<net::TokenBucket>(
        executor_, config_.quorum.rebuild_rate_bytes_per_sec,
        config_.quorum.rebuild_burst_bytes);
    replica.pacer->bind_telemetry(
        &scope_.counter("replication.rebuild_throttled_bytes"),
        &scope_.gauge("replication.rebuild_queue_bytes"));
  }
  const std::uint64_t epoch = service_epoch_;
  const std::uint64_t generation = replica.generation;
  CopyMachine::Hooks hooks;
  hooks.read_source = [this, i, epoch](std::uint64_t lba,
                                       std::uint32_t sectors,
                                       block::BlockDevice::ReadCallback cb) {
    if (epoch != service_epoch_) {
      cb(error(ErrorCode::kUnavailable, "stale rebuild"), Bytes{});
      return;
    }
    rebuild_read_source(i, lba, sectors, std::move(cb));
  };
  hooks.on_chunk = [this, i, epoch, generation](std::uint64_t /*lba*/,
                                                std::uint64_t sectors) {
    if (epoch != service_epoch_) return;
    if (generation != replicas_[i]->generation) return;
    const std::uint64_t bytes = sectors * block::kSectorSize;
    rebuild_bytes_ += bytes;
    scope_.counter("replication.rebuild_bytes").add(bytes);
    // Journal the shrunk dirty map + cursor: a relay crash resumes the
    // rebuild from here instead of restarting it.
    persist_state();
    update_backlog_gauge();
  };
  hooks.on_drained = [this, i, epoch, generation] {
    if (epoch != service_epoch_) return;
    if (generation != replicas_[i]->generation) return;
    finish_rebuild(i);
  };
  hooks.on_target_error = [this, i, epoch, generation](Status /*status*/) {
    if (epoch != service_epoch_) return;
    Replica& replica = *replicas_[i];
    if (generation != replica.generation) return;
    replica.device_dead = true;
    degrade(i, "rebuild target write failed");
  };
  replica.machine = std::make_shared<CopyMachine>(
      executor_, *replica.pacer, replica.device, replica.dirty,
      std::move(hooks), CopyMachine::Config{config_.rebuild_chunk_sectors});
  log_info("replication") << "replica " << replica.volume << " rebuilding "
                          << replica.dirty.sectors() << " sectors";
  persist_state();
  replica.machine->kick();
}

void ReplicationService::finish_rebuild(std::size_t i) {
  Replica& replica = *replicas_[i];
  // The machine stays allocated (this runs inside its frame); halt()
  // fences any stray token grants until the next rebuild replaces it.
  if (replica.machine) replica.machine->halt();
  replica.state = ReplicaState::kLive;
  // Version-map match: the copy machine drained every dirty extent and
  // write-through kept it current for everything else, so the copy now
  // holds every write up to the set version.
  replica.version = set_version_;
  ++rebuilds_completed_;
  scope_.counter("replication.rebuilds_completed").add();
  scope_.histogram("replication.rebuild_ns")
      .record(static_cast<std::int64_t>(now() - replica.rebuild_started));
  log_info("replication") << "replica " << replica.volume
                          << " rebuilt, back in rotation at version "
                          << replica.version;
  persist_state();
  update_backlog_gauge();
}

void ReplicationService::rebuild_read_source(
    std::size_t i, std::uint64_t lba, std::uint32_t sectors,
    block::BlockDevice::ReadCallback done) {
  for (std::size_t j = 0; j < replicas_.size(); ++j) {
    if (j == i) continue;
    Replica& replica = *replicas_[j];
    if (replica.state == ReplicaState::kLive && replica.device != nullptr &&
        !replica.device_dead) {
      replica.device->read(lba, sectors, std::move(done));
      return;
    }
  }
  // No live replica: stream from the primary through the relay's own
  // data path (Figure 12 — the primary is only reachable by injection).
  read_primary(lba, sectors, std::move(done));
}

void ReplicationService::read_primary(std::uint64_t lba,
                                      std::uint32_t sectors,
                                      block::BlockDevice::ReadCallback done) {
  if (last_ctx_ == nullptr) {
    // No session context yet (relay just restarted, no traffic seen):
    // the machine stalls and the next health probe retries.
    done(error(ErrorCode::kUnavailable, "no data path to primary"), Bytes{});
    return;
  }
  const std::uint32_t tag = next_synth_tag_++;
  PrimaryRead read;
  read.expected = sectors * block::kSectorSize;
  read.done = std::move(done);
  primary_reads_[tag] = std::move(read);
  last_ctx_->inject_to_target(
      iscsi::make_read_command(tag, lba, sectors * block::kSectorSize));
}

// ------------------------------------------------- journal + crash/rec

void ReplicationService::journal_intent(std::uint64_t version,
                                        std::uint64_t lba,
                                        std::uint32_t sectors) {
  if (journal_ == nullptr) return;
  Bytes rec;
  rec.reserve(1 + 8 + 8 + 4);
  push_u8(rec, kRecIntent);
  push_u64(rec, version);
  push_u64(rec, lba);
  push_u32(rec, sectors);
  intent_stream_.append(BufChain{Buf(std::move(rec))}, version, true);
}

void ReplicationService::note_intent_open(std::uint64_t version,
                                          std::uint32_t writes) {
  intent_outstanding_[version] = writes;
  advance_intent_trim();
}

void ReplicationService::resolve_intent(std::uint64_t version) {
  auto it = intent_outstanding_.find(version);
  if (it != intent_outstanding_.end() && it->second > 0) --it->second;
  advance_intent_trim();
}

void ReplicationService::advance_intent_trim() {
  std::uint64_t trim_to = 0;
  bool advanced = false;
  while (!intent_outstanding_.empty() &&
         intent_outstanding_.begin()->second == 0) {
    trim_to = intent_outstanding_.begin()->first;
    advanced = true;
    intent_outstanding_.erase(intent_outstanding_.begin());
  }
  if (advanced) intent_stream_.trim(trim_to);
}

void ReplicationService::persist_state() {
  if (journal_ == nullptr) return;
  ++state_seq_;
  Bytes rec;
  push_u8(rec, kRecState);
  push_u64(rec, state_seq_);
  push_u64(rec, set_version_);
  push_u16(rec, static_cast<std::uint16_t>(replicas_.size()));
  for (const auto& replica : replicas_) {
    push_u16(rec, static_cast<std::uint16_t>(replica->volume.size()));
    rec.insert(rec.end(), replica->volume.begin(), replica->volume.end());
    push_u8(rec, static_cast<std::uint8_t>(replica->state));
    push_u8(rec, replica->device_dead ? 1 : 0);
    push_u64(rec, replica->version);
    push_u64(rec, replica->machine ? replica->machine->cursor() : 0);
    push_u32(rec, static_cast<std::uint32_t>(replica->dirty.count()));
    for (const auto& [begin, end] : replica->dirty.ranges()) {
      push_u64(rec, begin);
      push_u64(rec, end);
    }
  }
  state_stream_.append(BufChain{Buf(std::move(rec))}, state_seq_, true);
  // Only the latest version-map snapshot matters; drop the older ones.
  state_stream_.trim(state_seq_ - 1);
}

void ReplicationService::on_host_crashed() {
  // The relay VM power-failed. Volatile bookkeeping is gone: in-flight
  // quorum holds (the initiator re-issues unanswered commands after
  // restart), collected rebuild reads, reassembly state. Device
  // completions and machine hooks from this incarnation fence on the
  // epoch; injection contexts are invalid until traffic resumes.
  ++service_epoch_;
  last_ctx_ = nullptr;
  pending_.clear();
  primary_reads_.clear();
  intent_outstanding_.clear();
  tracker_ = IoTracker{};
  for (auto& replica : replicas_) {
    ++replica->generation;
    replica->attaching = false;
    if (replica->machine) replica->machine->halt();
  }
}

void ReplicationService::on_host_recovered() {
  recover_from_journal();
  persist_state();
  update_backlog_gauge();
}

void ReplicationService::recover_from_journal() {
  if (journal_ == nullptr) return;

  // Latest version-map snapshot (normally exactly one record survives
  // the trim; tolerate more and take the highest sequence).
  std::optional<Bytes> best;
  std::uint64_t best_seq = 0;
  for (const BufChain& rec : state_stream_.unacknowledged()) {
    Bytes flat = chain_to_bytes(rec);
    RecordReader reader{flat};
    if (reader.u8() != kRecState) continue;
    const std::uint64_t seq = reader.u64();
    if (!reader.ok || seq < best_seq) continue;
    best_seq = seq;
    best = std::move(flat);
  }
  if (best) {
    RecordReader reader{*best};
    reader.u8();  // type
    const std::uint64_t seq = reader.u64();
    const std::uint64_t set_version = reader.u64();
    state_seq_ = std::max(state_seq_, seq);
    set_version_ = std::max(set_version_, set_version);
    const std::uint16_t count = reader.u16();
    for (std::uint16_t k = 0; k < count && reader.ok; ++k) {
      const std::string volume = reader.str(reader.u16());
      const auto state = static_cast<ReplicaState>(reader.u8());
      reader.u8();  // device_dead: live session state is authoritative
      const std::uint64_t version = reader.u64();
      reader.u64();  // cursor (informational; dirty map is the truth)
      const std::uint32_t extents = reader.u32();
      Replica* replica = nullptr;
      for (auto& r : replicas_) {
        if (r->volume == volume) {
          replica = r.get();
          break;
        }
      }
      if (replica == nullptr) {
        // A spare journaled before the crash but never re-registered:
        // recreate it; the health probe re-attaches it.
        auto fresh = std::make_unique<Replica>();
        fresh->volume = volume;
        fresh->device_dead = true;
        replicas_.push_back(std::move(fresh));
        replica = replicas_.back().get();
      }
      if (reader.ok) {
        // A rebuild that was running is resumed as degraded: its machine
        // died with the relay, but the journaled dirty map lets the next
        // probe continue where the copy stopped.
        replica->state = state == ReplicaState::kRebuilding
                             ? ReplicaState::kDegraded
                             : state;
        replica->version = version;
        replica->dirty.clear();
        for (std::uint32_t e = 0; e < extents && reader.ok; ++e) {
          const std::uint64_t begin = reader.u64();
          const std::uint64_t end = reader.u64();
          if (reader.ok) replica->dirty.add(begin, end);
        }
      }
    }
  }

  // Un-trimmed write intents: those bursts may or may not have reached
  // each copy (the acks were volatile). Conservatively mark the extent
  // dirty on every copy whose journaled version predates the intent —
  // the copy machine re-streams it from the primary, which the relay's
  // own session journal replay has made authoritative.
  std::uint64_t max_intent = 0;
  for (const BufChain& rec : intent_stream_.unacknowledged()) {
    Bytes flat = chain_to_bytes(rec);
    RecordReader reader{flat};
    if (reader.u8() != kRecIntent) continue;
    const std::uint64_t version = reader.u64();
    const std::uint64_t lba = reader.u64();
    const std::uint32_t sectors = reader.u32();
    if (!reader.ok) continue;
    max_intent = std::max(max_intent, version);
    written_.add(lba, lba + sectors);
    for (auto& replica : replicas_) {
      if (replica->version < version) {
        replica->dirty.add(lba, lba + sectors);
      }
    }
  }
  set_version_ = std::max(set_version_, max_intent);

  std::size_t degraded = 0;
  for (auto& replica : replicas_) {
    if (replica->state == ReplicaState::kLive) {
      if (replica->dirty.empty()) {
        // Every journaled intent below the trim horizon was resolved on
        // this copy: it is provably current.
        replica->version = set_version_;
      } else {
        replica->state = ReplicaState::kDegraded;
        ++replica->generation;
        ++degraded;
      }
    }
  }
  log_info("replication") << "recovered version map: set version "
                          << set_version_ << ", " << degraded
                          << " copies degraded by replayed intents";
}

}  // namespace storm::services
