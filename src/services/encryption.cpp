#include "services/encryption.hpp"

#include <stdexcept>

#include "block/block_device.hpp"

namespace storm::services {

EncryptionService::EncryptionService(Bytes key, EncryptionConfig config)
    : config_(config) {
  if (key.size() != 32 && key.size() != 64) {
    throw std::invalid_argument(
        "EncryptionService: key must be 32 or 64 bytes (XTS key pair)");
  }
  std::size_t half = key.size() / 2;
  xts_ = std::make_unique<crypto::AesXts>(
      std::span<const std::uint8_t>(key.data(), half),
      std::span<const std::uint8_t>(key.data() + half, half));
}

void EncryptionService::crypt(bool encrypt, std::uint64_t first_sector,
                              std::span<std::uint8_t> data) {
  for (std::size_t off = 0; off + block::kSectorSize <= data.size();
       off += block::kSectorSize) {
    std::span<std::uint8_t> sector = data.subspan(off, block::kSectorSize);
    if (encrypt) {
      xts_->encrypt_sector(first_sector + off / block::kSectorSize, sector,
                           sector);
    } else {
      xts_->decrypt_sector(first_sector + off / block::kSectorSize, sector,
                           sector);
    }
  }
}

core::ServiceVerdict EncryptionService::on_pdu(core::ServiceContext& ctx,
                                               core::Direction dir,
                                               iscsi::Pdu& pdu) {
  core::ServiceVerdict verdict;
  if (dir == core::Direction::kToTarget) {
    if (pdu.opcode == iscsi::Opcode::kScsiCommand && !pdu.is_read() &&
        !pdu.data.empty()) {
      // Immediate data starts at the command's LBA. mutable_span() clones
      // the payload iff another holder (journal, retransmit queue) still
      // references the plaintext bytes.
      crypt(true, pdu.lba, pdu.data.mutable_span());
      encrypted_ += pdu.data.size();
      ctx.scope().counter("encryption.bytes_encrypted").add(pdu.data.size());
      verdict.cpu_cost = config_.per_io + static_cast<sim::Duration>(
          config_.ns_per_byte * static_cast<double>(pdu.data.size()));
      // Remember the burst's starting LBA for its Data-Out tail.
      if (!pdu.is_final()) write_lbas_[pdu.task_tag] = pdu.lba;
      return verdict;
    }
    if (pdu.opcode == iscsi::Opcode::kDataOut && !pdu.data.empty()) {
      auto lba = write_lbas_.find(pdu.task_tag);
      if (lba != write_lbas_.end()) {
        crypt(true, lba->second + pdu.data_offset / block::kSectorSize,
              pdu.data.mutable_span());
        encrypted_ += pdu.data.size();
        ctx.scope().counter("encryption.bytes_encrypted").add(pdu.data.size());
        verdict.cpu_cost = static_cast<sim::Duration>(
            config_.ns_per_byte * static_cast<double>(pdu.data.size()));
        if (pdu.is_final()) write_lbas_.erase(lba);
      }
      return verdict;
    }
    if (pdu.opcode == iscsi::Opcode::kScsiCommand && pdu.is_read()) {
      tracker_.on_to_target(pdu);
    }
    return verdict;
  }
  // To initiator: decrypt Data-In against the read command's geometry.
  if (pdu.opcode == iscsi::Opcode::kDataIn && !pdu.data.empty()) {
    auto info = tracker_.read_info(pdu.task_tag);
    if (info) {
      crypt(false, info->lba + pdu.data_offset / block::kSectorSize,
            pdu.data.mutable_span());
      decrypted_ += pdu.data.size();
      ctx.scope().counter("encryption.bytes_decrypted").add(pdu.data.size());
      verdict.cpu_cost = config_.per_io + static_cast<sim::Duration>(
          config_.ns_per_byte * static_cast<double>(pdu.data.size()));
    }
  } else if (pdu.opcode == iscsi::Opcode::kScsiResponse) {
    tracker_.on_response(pdu.task_tag);
  }
  return verdict;
}

}  // namespace storm::services
