// Shared helper: reassemble iSCSI write bursts (command + Data-Out
// sequence) and remember read-command geometry, so services can work at
// whole-I/O granularity. Used by the monitor, ciphers and replication.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "iscsi/pdu.hpp"

namespace storm::services {

/// Tracks per-task-tag state of in-flight commands on one direction pair.
class IoTracker {
 public:
  struct WriteBurst {
    std::uint64_t lba = 0;
    std::uint32_t expected = 0;
    Bytes data;
    bool complete() const { return data.size() >= expected; }
  };
  struct ReadInfo {
    std::uint64_t lba = 0;
    std::uint32_t length = 0;
  };

  /// Feed a PDU heading to the target. Returns a completed write burst
  /// when this PDU finishes one.
  std::optional<WriteBurst> on_to_target(const iscsi::Pdu& pdu) {
    switch (pdu.opcode) {
      case iscsi::Opcode::kScsiCommand:
        if (pdu.is_read()) {
          reads_[pdu.task_tag] = ReadInfo{pdu.lba, pdu.transfer_length};
          return std::nullopt;
        } else {
          WriteBurst burst;
          burst.lba = pdu.lba;
          burst.expected = pdu.transfer_length;
          burst.data = pdu.data.to_bytes();
          if (burst.complete()) return burst;
          writes_[pdu.task_tag] = std::move(burst);
          return std::nullopt;
        }
      case iscsi::Opcode::kDataOut: {
        auto it = writes_.find(pdu.task_tag);
        if (it == writes_.end()) return std::nullopt;
        pdu.data.append_to(it->second.data);
        if (it->second.complete()) {
          WriteBurst burst = std::move(it->second);
          writes_.erase(it);
          return burst;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  /// Geometry of the read owning `task_tag`, if tracked.
  std::optional<ReadInfo> read_info(std::uint32_t task_tag) const {
    auto it = reads_.find(task_tag);
    if (it == reads_.end()) return std::nullopt;
    return it->second;
  }

  /// Call on SCSI responses to release read state.
  void on_response(std::uint32_t task_tag) { reads_.erase(task_tag); }

 private:
  std::map<std::uint32_t, WriteBurst> writes_;
  std::map<std::uint32_t, ReadInfo> reads_;
};

}  // namespace storm::services
