// Tenant-side encryption baseline ("performed by the tenant VM" in the
// paper's Figures 10/11): a dm-crypt-style layer stacked on the VM's
// virtual disk. Cipher work runs on the *tenant VM's* vCPUs and — like
// dm-crypt holding application threads while encrypting and flushing —
// the submitting I/O blocks until the cipher work completes.
#pragma once

#include <cstdint>
#include <memory>

#include "block/block_device.hpp"
#include "crypto/aes.hpp"
#include "sim/cpu.hpp"

namespace storm::services {

struct EncryptedDiskConfig {
  /// In-guest kernel crypto without hardware offload (~70 MB/s per core,
  /// 2016-era): the cost dm-crypt charges the tenant VM per byte.
  double ns_per_byte = 14.0;
  /// Fixed per-I/O cost: dm-crypt's workqueue dispatch and the spinlock
  /// time it "holds application threads on ... while encrypting/flushing
  /// writes" (paper §V-B2). Dominates for small-file workloads; noise for
  /// large streaming I/O.
  sim::Duration per_io = sim::microseconds(500);
};

class EncryptedDisk : public block::BlockDevice {
 public:
  /// `cpu` is the tenant VM's vCPU set; cipher work contends with the
  /// VM's foreground application there.
  EncryptedDisk(block::BlockDevice& inner, sim::Cpu& cpu, Bytes key,
                EncryptedDiskConfig config = {});

  void read(std::uint64_t lba, std::uint32_t count,
            ReadCallback done) override;
  void write(std::uint64_t lba, Bytes data, WriteCallback done) override;
  std::uint64_t num_sectors() const override { return inner_.num_sectors(); }

  std::uint64_t bytes_ciphered() const { return ciphered_; }

 private:
  sim::Duration cost_of(std::size_t bytes) const {
    return config_.per_io +
           static_cast<sim::Duration>(config_.ns_per_byte *
                                      static_cast<double>(bytes));
  }

  block::BlockDevice& inner_;
  sim::Cpu& cpu_;
  std::unique_ptr<crypto::AesXts> xts_;
  EncryptedDiskConfig config_;
  std::uint64_t ciphered_ = 0;
};

}  // namespace storm::services
