// Tenant-defined quorum replica set (paper §V-B3, grown into a real
// replication protocol). Writes are copied, in order, to backup volumes
// attached to the middle-box while the original proceeds to the primary;
// with a `quorum` policy stanza the SCSI response is released to the
// tenant only once W of the N copies (primary included) have
// acknowledged. Every completed write burst bumps a per-set version;
// each replica tracks the last version it applied, so a copy that
// missed writes is *degraded* — excluded from read rotation — until the
// copy machine (rebuild.hpp) streams its dirty extents back from a
// survivor. Reads stripe round-robin across the up-to-date copies and
// re-verify the serving replica's version on completion: a replica that
// degraded while the read was in flight can never return stale bytes.
//
// Recovery state (write-intent extents + the replica state/version map)
// is journaled into the hosting relay's NVRAM device, so a relay power
// failure degrades replicas conservatively instead of silently
// resurrecting them as up-to-date.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "block/block_device.hpp"
#include "core/policy.hpp"
#include "core/service.hpp"
#include "journal/log.hpp"
#include "net/qos.hpp"
#include "services/rebuild.hpp"
#include "services/write_tracker.hpp"

namespace storm::services {

struct ReplicationConfig {
  /// Per-I/O dispatch cost.
  sim::Duration per_io = sim::microseconds(2);
  /// Quorum policy (core/policy `quorum` stanza). Disabled = legacy
  /// fire-and-forget mirroring: the primary's response passes through
  /// unheld, but version tracking and rebuild still run.
  core::QuorumSpec quorum;
  /// Sectors per rebuild copy chunk.
  std::uint32_t rebuild_chunk_sectors = 128;
};

enum class ReplicaState : std::uint8_t {
  kLive = 0,        // in read rotation, receives every write
  kDegraded = 1,    // missed writes (or device dead); out of rotation
  kRebuilding = 2,  // copy machine streaming dirty extents back
};

const char* to_string(ReplicaState state);

class ReplicationService : public core::StorageService {
 public:
  /// Attach one backup volume to the middle-box VM and deliver its block
  /// device. Used at initialize() for the configured replicas and again
  /// by the health probe to re-attach a dead replica or a spare. The
  /// primary stays reachable only through the forwarding path, as in the
  /// paper's Figure 12.
  using AttachFn = std::function<void(
      const std::string& volume,
      std::function<void(Status, block::BlockDevice*)>)>;

  ReplicationService(std::vector<std::string> replica_volumes,
                     AttachFn attach, ReplicationConfig config = {});

  std::string name() const override { return "replication"; }
  bool requires_active_relay() const override { return true; }
  // Bypassing replication silently stops mirroring acknowledged writes.
  bool confidentiality_critical() const override { return true; }
  // The copy set is bound to one protected volume at construction; a
  // pooled instance would mirror the wrong volume's writes.
  bool replica_safe() const override { return false; }

  void initialize(std::function<void(Status)> ready) override;
  core::ServiceVerdict on_pdu(core::ServiceContext& ctx, core::Direction dir,
                              iscsi::Pdu& pdu) override;

  void bind_host(const core::ServiceHost& host) override;
  void on_health_probe(sim::Time now) override;
  void on_host_crashed() override;
  void on_host_recovered() override;

  /// Add a fresh spare copy to the set: it starts degraded with every
  /// written extent dirty; the health probe attaches it and the copy
  /// machine streams it to parity before it joins read rotation.
  void attach_spare(const std::string& volume);

  // --- accessors (tests / benches) ---
  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t live_replicas() const;
  ReplicaState replica_state(std::size_t i) const {
    return replicas_[i]->state;
  }
  std::uint64_t replica_version(std::size_t i) const {
    return replicas_[i]->version;
  }
  std::uint64_t set_version() const { return set_version_; }
  std::uint64_t reads_from_primary() const { return reads_primary_; }
  std::uint64_t reads_from_replicas() const { return reads_replica_; }
  std::uint64_t reads_failed_over() const { return reads_failed_over_; }
  std::uint64_t writes_replicated() const { return writes_replicated_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t stale_reads_prevented() const {
    return stale_reads_prevented_;
  }
  std::uint64_t quorum_commits() const { return quorum_commits_; }
  std::uint64_t quorum_degraded_commits() const {
    return quorum_degraded_commits_;
  }
  std::uint64_t quorum_failures() const { return quorum_failures_; }
  std::uint64_t rebuilds_completed() const { return rebuilds_completed_; }
  std::uint64_t rebuild_bytes() const { return rebuild_bytes_; }
  /// Dirty sectors still owed across all replicas (rebuild backlog).
  std::uint64_t rebuild_backlog_sectors() const;

 private:
  struct Replica {
    std::string volume;
    block::BlockDevice* device = nullptr;
    ReplicaState state = ReplicaState::kLive;
    /// Last write version this copy applied (its row of the version map).
    std::uint64_t version = 0;
    /// Bumped on every degrade: completions from before the transition
    /// compare generations and drop their effects.
    std::uint64_t generation = 0;
    /// The device errored (session dead): needs a re-attach before any
    /// rebuild can target it.
    bool device_dead = false;
    bool attaching = false;
    /// Sector extents this copy missed.
    ExtentSet dirty;
    std::shared_ptr<CopyMachine> machine;
    std::unique_ptr<net::TokenBucket> pacer;
    sim::Time rebuild_started = 0;
  };

  /// One write burst awaiting its W-of-N acknowledgments (quorum mode).
  struct PendingWrite {
    std::uint64_t version = 0;
    core::ServiceContext* ctx = nullptr;
    std::uint32_t acks = 0;         // replica acks received
    std::uint32_t outstanding = 0;  // replica writes still in flight
    std::uint32_t required = 0;     // acks needed, primary included
    bool primary_seen = false;      // primary's SCSI response arrived
    bool primary_acked = false;     // ... with GOOD status
    bool have_primary_response = false;
    bool responded = false;  // a response was released to the initiator
    iscsi::Pdu primary_response;
    sim::Time started = 0;
  };

  /// A rebuild read served by the primary through the relay's data path
  /// (synthetic task tag; Data-In/Response consumed in on_pdu).
  struct PrimaryRead {
    std::uint32_t expected = 0;
    Bytes data;
    block::BlockDevice::ReadCallback done;
  };

  core::ServiceVerdict on_to_target(core::ServiceContext& ctx,
                                    iscsi::Pdu& pdu);
  core::ServiceVerdict on_to_initiator(core::ServiceContext& ctx,
                                       iscsi::Pdu& pdu);
  void handle_write_burst(core::ServiceContext& ctx, std::uint32_t task_tag,
                          const IoTracker::WriteBurst& burst);
  void dispatch_replica_write(std::size_t i, std::uint64_t version,
                              std::uint64_t begin, std::uint64_t end,
                              const Bytes& data, bool counts_quorum,
                              std::uint32_t task_tag);
  void serve_read_from_replica(std::size_t i, const iscsi::Pdu& command,
                               core::ServiceContext& ctx);
  void reserve_from_primary(core::ServiceContext& ctx,
                            const iscsi::Pdu& command);

  void degrade(std::size_t i, const char* why);
  void start_rebuild(std::size_t i);
  void finish_rebuild(std::size_t i);
  void try_reattach(std::size_t i);
  void rebuild_read_source(std::size_t i, std::uint64_t lba,
                           std::uint32_t sectors,
                           block::BlockDevice::ReadCallback done);
  void read_primary(std::uint64_t lba, std::uint32_t sectors,
                    block::BlockDevice::ReadCallback done);

  void resolve_quorum_ack(std::uint32_t task_tag, bool ok);
  /// Re-evaluate commit for `task_tag`; releases/injects the response
  /// when the (possibly degraded-lowered) quorum is met, and erases the
  /// entry once fully drained.
  void maybe_commit(std::uint32_t task_tag);

  void journal_intent(std::uint64_t version, std::uint64_t lba,
                      std::uint32_t sectors);
  void note_intent_open(std::uint64_t version, std::uint32_t writes);
  void resolve_intent(std::uint64_t version);
  void advance_intent_trim();
  void persist_state();
  void recover_from_journal();
  void update_backlog_gauge();
  sim::Time now() const {
    return executor_.valid() ? executor_.now() : sim::Time{0};
  }

  std::vector<std::string> replica_volumes_;
  AttachFn attach_;
  ReplicationConfig config_;
  /// unique_ptr: CopyMachine holds a reference to its replica's dirty
  /// set, which must stay put when attach_spare() grows the vector.
  std::vector<std::unique_ptr<Replica>> replicas_;
  IoTracker tracker_;

  // Host bindings (bind_host).
  sim::Executor executor_;
  obs::Scope scope_;
  journal::Device* journal_ = nullptr;
  journal::Stream intent_stream_;
  journal::Stream state_stream_;

  /// Injection context for service-originated PDUs outside an on_pdu
  /// frame (held quorum responses, rebuild reads from the primary).
  /// Refreshed on every on_pdu; nulled on host crash.
  core::ServiceContext* last_ctx_ = nullptr;

  /// Bumped by on_host_crashed(): callbacks from the dead incarnation
  /// (device completions, machine hooks) drop themselves.
  std::uint64_t service_epoch_ = 0;

  /// Version map spine: bumped once per completed write burst.
  std::uint64_t set_version_ = 0;
  std::uint64_t state_seq_ = 0;
  /// Every extent ever written through the set (seed for spare copies).
  ExtentSet written_;
  /// version -> unresolved replica writes (write-intent trim horizon).
  std::map<std::uint64_t, std::uint32_t> intent_outstanding_;
  std::map<std::uint32_t, PendingWrite> pending_;
  std::map<std::uint32_t, PrimaryRead> primary_reads_;
  std::uint32_t next_synth_tag_ = 0x52420000;  // "RB": rebuild reads

  std::uint64_t round_robin_ = 0;
  std::uint64_t reads_primary_ = 0;
  std::uint64_t reads_replica_ = 0;
  std::uint64_t reads_failed_over_ = 0;
  std::uint64_t writes_replicated_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t stale_reads_prevented_ = 0;
  std::uint64_t quorum_commits_ = 0;
  std::uint64_t quorum_degraded_commits_ = 0;
  std::uint64_t quorum_failures_ = 0;
  std::uint64_t rebuilds_completed_ = 0;
  std::uint64_t rebuild_bytes_ = 0;
};

}  // namespace storm::services
