// Tenant-defined replica dispatch (paper §V-B3): write I/O is copied, in
// order, to backup volumes attached to the middle-box while the original
// proceeds to the primary; read I/O alternates across all available
// copies, aggregating their throughput. A copy that fails (e.g. its iSCSI
// session is closed) is removed from rotation and its in-flight reads are
// re-served from the remaining copies — the tenant VM never notices.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "block/block_device.hpp"
#include "core/service.hpp"
#include "services/write_tracker.hpp"

namespace storm::services {

struct ReplicationConfig {
  /// Per-I/O dispatch cost.
  sim::Duration per_io = sim::microseconds(2);
};

class ReplicationService : public core::StorageService {
 public:
  /// `attach_replicas` is invoked at initialize() time and must deliver
  /// the backup volumes' block devices (the platform attaches them to the
  /// middle-box VM). The primary stays reachable only through the
  /// forwarding path, as in the paper's Figure 12.
  using ReplicaProvider = std::function<void(
      std::function<void(Status, std::vector<block::BlockDevice*>)>)>;

  ReplicationService(ReplicaProvider attach_replicas,
                     ReplicationConfig config = {});

  std::string name() const override { return "replication"; }
  bool requires_active_relay() const override { return true; }
  // Bypassing replication silently stops mirroring acknowledged writes.
  bool confidentiality_critical() const override { return true; }

  void initialize(std::function<void(Status)> ready) override;
  core::ServiceVerdict on_pdu(core::ServiceContext& ctx, core::Direction dir,
                              iscsi::Pdu& pdu) override;

  std::size_t live_replicas() const;
  std::uint64_t reads_from_primary() const { return reads_primary_; }
  std::uint64_t reads_from_replicas() const { return reads_replica_; }
  std::uint64_t writes_replicated() const { return writes_replicated_; }
  std::uint64_t failovers() const { return failovers_; }

 private:
  struct Replica {
    block::BlockDevice* device = nullptr;
    bool alive = true;
  };

  void replicate_write(const IoTracker::WriteBurst& burst);
  void serve_read_from_replica(std::size_t replica_index,
                               const iscsi::Pdu& command,
                               core::ServiceContext& ctx);
  void mark_dead(std::size_t replica_index);

  ReplicaProvider attach_replicas_;
  ReplicationConfig config_;
  std::vector<Replica> replicas_;
  IoTracker tracker_;
  std::uint64_t round_robin_ = 0;
  std::uint64_t reads_primary_ = 0;
  std::uint64_t reads_replica_ = 0;
  std::uint64_t writes_replicated_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace storm::services
