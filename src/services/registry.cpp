#include "services/registry.hpp"

#include <sstream>

#include "services/encryption.hpp"
#include "services/monitor.hpp"
#include "services/replication.hpp"
#include "services/stream_cipher.hpp"

namespace storm::services {

Result<Bytes> parse_hex_key(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return error(ErrorCode::kInvalidArgument, "odd-length hex key");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return error(ErrorCode::kInvalidArgument, "bad hex key");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

void register_builtin_services(core::StormPlatform& platform) {
  platform.register_service(
      "monitor",
      [](core::ServiceEnv& env)
          -> Result<std::unique_ptr<core::StorageService>> {
        if (env.volume == nullptr) {
          return error(ErrorCode::kInvalidArgument,
                       "monitor needs the protected volume for its initial "
                       "filesystem view");
        }
        // The platform supplies the initial view at attach time (§III-C).
        // A volume with no readable filesystem (blank, or encrypted at
        // rest) starts unarmed and bootstraps from intercepted writes.
        auto recon = core::SemanticsReconstructor::from_snapshot(
            env.volume->disk().store());
        std::unique_ptr<core::SemanticsReconstructor> reconstructor =
            recon.is_ok() ? std::move(recon).take()
                          : core::SemanticsReconstructor::unformatted();
        auto service =
            std::make_unique<MonitorService>(std::move(reconstructor));
        std::string watch = env.spec->param("watch");
        if (!watch.empty()) {
          for (const std::string& path : split_csv(watch)) {
            service->watch(path);
          }
        }
        return std::unique_ptr<core::StorageService>(std::move(service));
      });

  platform.register_service(
      "encryption",
      [](core::ServiceEnv& env)
          -> Result<std::unique_ptr<core::StorageService>> {
        Bytes key(64, 0x24);  // default demo key (AES-256-XTS pair)
        std::string hex = env.spec->param("key");
        if (!hex.empty()) {
          auto parsed = parse_hex_key(hex);
          if (!parsed.is_ok()) return parsed.status();
          key = std::move(parsed).take();
        }
        return std::unique_ptr<core::StorageService>(
            std::make_unique<EncryptionService>(std::move(key)));
      });

  platform.register_service(
      "stream_cipher",
      [](core::ServiceEnv&)
          -> Result<std::unique_ptr<core::StorageService>> {
        return std::unique_ptr<core::StorageService>(
            std::make_unique<StreamCipherService>());
      });

  platform.register_service(
      "replication",
      [](core::ServiceEnv& env)
          -> Result<std::unique_ptr<core::StorageService>> {
        std::vector<std::string> replica_names =
            split_csv(env.spec->param("replicas"));
        if (replica_names.empty()) {
          return error(ErrorCode::kInvalidArgument,
                       "replication needs replicas=<vol,vol,...>");
        }
        cloud::Cloud* cloud = env.cloud;
        cloud::Vm* mb_vm = env.mb_vm;
        // Per-volume attach: used for the initial replica set and again
        // by the health probe to re-attach dead copies and spares.
        ReplicationService::AttachFn attach =
            [cloud, mb_vm](const std::string& volume,
                           std::function<void(Status, block::BlockDevice*)>
                               done) {
              // A dead copy's stale attachment pins the volume; recycle
              // it (close sessions, free the volume) before re-attaching.
              (void)cloud->detach_volume(mb_vm->name(), volume);
              cloud->attach_volume(
                  *mb_vm, volume,
                  [done](Status status, cloud::Attachment attachment) {
                    done(status,
                         status.is_ok() ? attachment.disk : nullptr);
                  });
            };
        ReplicationConfig config;
        config.quorum = env.spec->quorum;
        return std::unique_ptr<core::StorageService>(
            std::make_unique<ReplicationService>(
                std::move(replica_names), std::move(attach), config));
      });
}

}  // namespace storm::services
