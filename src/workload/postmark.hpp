// PostMark-like small-file workload (the paper's Figure 11 application):
// creates a pool of small files across subdirectories, then runs a
// transaction mix of whole-file reads, appends, creations and deletions,
// reporting per-operation-class rates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fs/simext.hpp"
#include "sim/simulator.hpp"

namespace storm::workload {

struct PostmarkConfig {
  unsigned directories = 10;
  unsigned initial_files = 100;
  unsigned transactions = 500;
  std::uint32_t min_file_bytes = 512;
  std::uint32_t max_file_bytes = 16 * 1024;
  std::uint32_t append_bytes = 4096;
  std::uint64_t seed = 7;
};

struct PostmarkResult {
  double read_ops_per_s = 0;
  double append_ops_per_s = 0;
  double create_ops_per_s = 0;
  double delete_ops_per_s = 0;
  double read_mb_per_s = 0;
  double write_mb_per_s = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0;
};

class PostmarkRunner {
 public:
  /// `executor`: the partition driving the filesystem (implicit from
  /// Simulator& for single-partition callers).
  PostmarkRunner(sim::Executor executor, fs::SimExt& filesystem,
                 PostmarkConfig config);

  void run(std::function<void(PostmarkResult)> done);

  /// Observe every transaction's completion latency (e.g. foreground
  /// p99 while a replica rebuild competes for the data path). Called
  /// once per transaction, in issue order.
  void set_latency_sink(std::function<void(sim::Duration)> sink) {
    latency_sink_ = std::move(sink);
  }

 private:
  void setup_dirs(unsigned index);
  void create_initial(unsigned index);
  void transaction(unsigned index);
  void finish();

  std::string random_existing();
  std::string fresh_name();

  sim::Executor sim_;
  fs::SimExt& fs_;
  PostmarkConfig config_;
  Rng rng_;
  std::vector<std::string> files_;
  std::uint64_t next_file_id_ = 0;

  sim::Time phase_start_ = 0;
  std::uint64_t reads_ = 0, appends_ = 0, creates_ = 0, deletes_ = 0;
  std::uint64_t bytes_read_ = 0, bytes_written_ = 0, errors_ = 0;
  std::function<void(PostmarkResult)> done_;
  std::function<void(sim::Duration)> latency_sink_;
};

}  // namespace storm::workload
