// MiniDB: a small page-based transactional record store over a raw block
// device, plus a network server and OLTP clients — the MySQL + Sysbench
// stand-in for the paper's replication experiment (Figure 12/13).
//
// Records are fixed-size; a transaction reads R random records and
// rewrites W of them, WAL-first (write-ahead page, then data pages),
// giving the mixed read/write block traffic an OLTP database produces.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "block/block_device.hpp"
#include "cloud/cloud.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace storm::workload {

struct MiniDbConfig {
  std::uint32_t record_bytes = 512;   // one record per sector
  std::uint32_t records = 10'000;
  unsigned reads_per_txn = 4;         // sysbench "complex" mixes reads...
  unsigned writes_per_txn = 2;        // ...and updates per transaction
};

class MiniDb {
 public:
  /// `executor`: the partition driving the device (implicit from
  /// Simulator& for single-partition callers).
  MiniDb(sim::Executor executor, block::BlockDevice& device,
         MiniDbConfig config = {});

  /// Format the store (writes initial records + WAL header).
  void init(std::function<void(Status)> done);

  /// Execute one transaction (closed loop; records chosen by `rng`).
  void transaction(Rng& rng, std::function<void(Status)> done);

  std::uint64_t committed() const { return committed_; }
  const MiniDbConfig& config() const { return config_; }

 private:
  std::uint64_t record_lba(std::uint32_t record) const {
    return kDataStart + record;  // one sector per record
  }
  static constexpr std::uint64_t kWalLba = 0;
  static constexpr std::uint64_t kDataStart = 8;

  sim::Executor sim_;
  block::BlockDevice& dev_;
  MiniDbConfig config_;
  std::uint64_t next_txn_id_ = 1;
  std::uint64_t committed_ = 0;
};

/// Network front-end: executes one transaction per request line ("TXN\n"),
/// replying "OK\n" / "ERR\n".
class DbServer {
 public:
  DbServer(cloud::Vm& vm, MiniDb& db, std::uint16_t port = 3306);
  void start();
  std::uint64_t requests_served() const { return served_; }

 private:
  cloud::Vm& vm_;
  MiniDb& db_;
  std::uint16_t port_;
  Rng rng_{99};
  std::uint64_t served_ = 0;
};

/// Closed-loop OLTP client VM: `threads` concurrent request streams over
/// one connection each. Records commits into per-second buckets for the
/// Figure 13 timeline.
class OltpClient {
 public:
  OltpClient(cloud::Vm& vm, net::SocketAddr server, unsigned threads);

  /// Run until `deadline` (absolute sim time); `done` fires when all
  /// threads have drained.
  void start(sim::Time deadline, std::function<void()> done);

  /// Commits bucketed by whole seconds since t=0 (shared scale for all
  /// clients).
  const std::vector<std::uint64_t>& per_second_commits() const {
    return buckets_;
  }
  std::uint64_t total_commits() const { return total_; }

 private:
  void thread_loop(net::TcpConnection* conn);

  cloud::Vm& vm_;
  net::SocketAddr server_;
  unsigned threads_;
  sim::Time deadline_ = 0;
  unsigned running_ = 0;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::function<void()> done_;
};

}  // namespace storm::workload
