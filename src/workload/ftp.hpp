// FTP-like file transfer (the paper's Figure 10 workload): a server VM
// stores uploads on / serves downloads from its attached volume through a
// SimExt filesystem; a client VM streams data over the instance network.
//
// Wire protocol (one TCP connection per transfer):
//   client -> "PUT <name> <bytes>\n" + payload     server: "OK\n"
//   client -> "GET <name>\n"                       server: "<bytes>\n" + payload
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cloud/cloud.hpp"
#include "fs/simext.hpp"

namespace storm::workload {

class FtpServer {
 public:
  FtpServer(cloud::Vm& vm, fs::SimExt& filesystem,
            std::uint16_t port = 2121);

  void start();

  std::uint64_t bytes_stored() const { return bytes_stored_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  struct Session {
    net::TcpConnection* conn = nullptr;
    Bytes buffer;
    bool header_done = false;
    // upload state
    std::string name;
    std::uint64_t expected = 0;
    std::uint64_t received = 0;
    std::uint64_t write_offset = 0;
    Bytes pending;       // bytes not yet written to the filesystem
    bool writing = false;
    bool finished = false;
  };

  void on_accept(net::TcpConnection& conn);
  void on_data(std::shared_ptr<Session> session, Buf data);
  void pump_upload(std::shared_ptr<Session> session);
  void serve_download(std::shared_ptr<Session> session,
                      const std::string& name);

  cloud::Vm& vm_;
  fs::SimExt& fs_;
  std::uint16_t port_;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t bytes_served_ = 0;
};

struct FtpTransferResult {
  Status status = Status::ok();
  std::uint64_t bytes = 0;
  double seconds = 0;
  double mb_per_s = 0;
};

class FtpClient {
 public:
  FtpClient(cloud::Vm& vm, net::SocketAddr server) : vm_(vm), server_(server) {}

  void upload(const std::string& name, std::uint64_t bytes,
              std::function<void(FtpTransferResult)> done);
  void download(const std::string& name,
                std::function<void(FtpTransferResult)> done);

 private:
  cloud::Vm& vm_;
  net::SocketAddr server_;
};

}  // namespace storm::workload
