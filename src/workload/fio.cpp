#include "workload/fio.hpp"

namespace storm::workload {

FioRunner::FioRunner(sim::Executor executor, block::BlockDevice& device,
                     FioConfig config)
    : sim_(executor), dev_(device), config_(config), rng_(config.seed) {}

void FioRunner::start(std::function<void(FioResult)> done) {
  done_ = std::move(done);
  started_ = sim_.now();
  deadline_ = sim_.now() + config_.duration;
  jobs_running_ = config_.jobs;
  for (unsigned job = 0; job < config_.jobs; ++job) {
    job_loop(job);
  }
}

void FioRunner::job_loop(unsigned job_index) {
  if (sim_.now() >= deadline_) {
    --jobs_running_;
    finish_if_done();
    return;
  }
  const std::uint32_t sectors = config_.request_bytes / block::kSectorSize;
  const std::uint64_t max_lba = dev_.num_sectors() - sectors;
  std::uint64_t lba;
  if (config_.random_offsets) {
    // Sector-size aligned random offsets, as fio does by default.
    lba = rng_.below(max_lba / sectors) * sectors;
  } else {
    lba = (reads_ + writes_) * sectors % max_lba;
  }

  sim::Time issued = sim_.now();
  auto complete = [this, job_index, issued](Status status) {
    if (status.is_ok()) {
      latency_ns_.record(static_cast<std::int64_t>(sim_.now() - issued));
    }
    job_loop(job_index);
  };

  if (rng_.next_double() < config_.write_ratio) {
    ++writes_;
    Bytes data(config_.request_bytes);
    std::uint32_t fill = rng_.next_u32();
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(fill >> (8 * (i % 4)));
    }
    dev_.write(lba, std::move(data), complete);
  } else {
    ++reads_;
    dev_.read(lba, sectors,
              [complete](Status status, Bytes) { complete(status); });
  }
}

void FioRunner::finish_if_done() {
  if (jobs_running_ > 0) return;
  FioResult result;
  result.read_ops = reads_;
  result.write_ops = writes_;
  result.total_ops = latency_ns_.count();
  double elapsed_s = sim::to_seconds(sim_.now() - started_);
  if (elapsed_s > 0) {
    result.iops = static_cast<double>(result.total_ops) / elapsed_s;
    result.throughput_mb_s =
        result.iops * config_.request_bytes / (1024.0 * 1024.0);
  }
  result.mean_latency_ms = latency_ns_.mean() / 1e6;
  result.p99_latency_ms = latency_ns_.percentile(99) / 1e6;
  done_(result);
}

}  // namespace storm::workload
