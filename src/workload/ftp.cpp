#include "workload/ftp.hpp"

#include <sstream>

#include "common/log.hpp"

namespace storm::workload {

namespace {

/// Extract a '\n'-terminated header line from the front of `buffer`.
std::optional<std::string> take_line(Bytes& buffer) {
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] == '\n') {
      std::string line(buffer.begin(),
                       buffer.begin() + static_cast<std::ptrdiff_t>(i));
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(i + 1));
      return line;
    }
  }
  return std::nullopt;
}

constexpr std::size_t kFsChunk = 1024 * 1024;  // streaming granularity
// Userspace FTP work per payload byte (recv copies, VFS) on the VM's CPU.
constexpr double kAppNsPerByte = 3.0;

}  // namespace

FtpServer::FtpServer(cloud::Vm& vm, fs::SimExt& filesystem,
                     std::uint16_t port)
    : vm_(vm), fs_(filesystem), port_(port) {}

void FtpServer::start() {
  vm_.node().tcp().listen(port_, [this](net::TcpConnection& conn) {
    on_accept(conn);
  });
}

void FtpServer::on_accept(net::TcpConnection& conn) {
  auto session = std::make_shared<Session>();
  session->conn = &conn;
  conn.set_on_data(
      [this, session](Buf data) { on_data(session, std::move(data)); });
}

void FtpServer::on_data(std::shared_ptr<Session> session, Buf data) {
  if (session->finished) return;
  if (!session->header_done) {
    data.append_to(session->buffer);
    auto line = take_line(session->buffer);
    if (!line) return;
    std::istringstream header(*line);
    std::string verb, name;
    header >> verb >> name;
    if (!name.empty() && name[0] != '/') name = "/" + name;  // FTP CWD is /
    if (verb == "PUT") {
      header >> session->expected;
      session->name = name;
      session->header_done = true;
      // Leftover buffer bytes are payload.
      session->pending = std::move(session->buffer);
      session->buffer.clear();
      session->received = session->pending.size();
      fs_.create(name, [this, session](Status status) {
        if (!status.is_ok() &&
            status.code() != ErrorCode::kAlreadyExists) {
          session->conn->abort();
          session->finished = true;
          return;
        }
        pump_upload(session);
      });
      return;
    }
    if (verb == "GET") {
      session->header_done = true;
      serve_download(session, name);
      return;
    }
    session->conn->abort();
    session->finished = true;
    return;
  }
  // Upload payload bytes.
  data.append_to(session->pending);
  session->received += data.size();
  pump_upload(session);
}

void FtpServer::pump_upload(std::shared_ptr<Session> session) {
  if (session->writing || session->finished) return;
  bool complete = session->received >= session->expected;
  if (session->pending.size() < kFsChunk && !complete) return;
  if (session->pending.empty() && complete) {
    session->finished = true;
    session->conn->send(to_bytes("OK\n"));
    return;
  }
  std::size_t n = std::min(session->pending.size(), kFsChunk);
  Bytes chunk(session->pending.begin(),
              session->pending.begin() + static_cast<std::ptrdiff_t>(n));
  session->pending.erase(
      session->pending.begin(),
      session->pending.begin() + static_cast<std::ptrdiff_t>(n));
  session->writing = true;
  std::uint64_t offset = session->write_offset;
  session->write_offset += n;
  bytes_stored_ += n;
  // Application-side processing of the received bytes, then the write.
  vm_.cpu().burn(static_cast<sim::Duration>(kAppNsPerByte *
                                            static_cast<double>(n)));
  fs_.write_file(session->name, offset, std::move(chunk),
                 [this, session](Status status) {
                   session->writing = false;
                   if (!status.is_ok()) {
                     session->conn->abort();
                     session->finished = true;
                     return;
                   }
                   pump_upload(session);
                 });
}

void FtpServer::serve_download(std::shared_ptr<Session> session,
                               const std::string& name) {
  fs_.stat(name, [this, session, name](Status status, fs::StatInfo info) {
    if (!status.is_ok()) {
      session->conn->send(to_bytes("-1\n"));
      session->finished = true;
      return;
    }
    session->conn->send(to_bytes(std::to_string(info.size) + "\n"));
    // Stream the file in chunks.
    auto offset = std::make_shared<std::uint64_t>(0);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, session, name, size = info.size, offset, step] {
      if (*offset >= size) {
        session->finished = true;
        return;
      }
      std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kFsChunk, size - *offset));
      fs_.read_file(name, *offset, n,
                    [this, session, offset, step](Status status, Bytes data) {
                      if (!status.is_ok()) {
                        session->conn->abort();
                        session->finished = true;
                        return;
                      }
                      *offset += data.size();
                      bytes_served_ += data.size();
                      vm_.cpu().burn(static_cast<sim::Duration>(
                          kAppNsPerByte * static_cast<double>(data.size())));
                      session->conn->send(std::move(data));
                      (*step)();
                    });
    };
    (*step)();
  });
}

void FtpClient::upload(const std::string& name, std::uint64_t bytes,
                       std::function<void(FtpTransferResult)> done) {
  sim::Executor ex = vm_.node().executor();
  sim::Time started = ex.now();
  auto& conn = vm_.node().tcp().connect(server_, [] {});
  Bytes header =
      to_bytes("PUT " + name + " " + std::to_string(bytes) + "\n");
  conn.send(std::move(header));
  // Stream the payload in 1 MB application writes.
  auto sent = std::make_shared<std::uint64_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  auto conn_ptr = &conn;
  *step = [conn_ptr, bytes, sent, step, ex] {
    if (*sent >= bytes) return;
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(1024 * 1024, bytes - *sent));
    Bytes chunk(n);
    for (std::size_t i = 0; i < n; ++i) {
      chunk[i] = static_cast<std::uint8_t>((*sent + i) * 131);
    }
    *sent += n;
    conn_ptr->send(std::move(chunk));
    // Pace by send-buffer drain: check back shortly.
    ex.schedule_in(sim::milliseconds(1), [step] { (*step)(); });
  };
  (*step)();

  conn.set_on_data([done, started, bytes, ex, conn_ptr](Buf reply) {
    if (reply.empty()) return;
    FtpTransferResult result;
    result.bytes = bytes;
    result.seconds = sim::to_seconds(ex.now() - started);
    if (result.seconds > 0) {
      result.mb_per_s =
          static_cast<double>(bytes) / (1024.0 * 1024.0) / result.seconds;
    }
    conn_ptr->close();
    done(result);
  });
}

void FtpClient::download(const std::string& name,
                         std::function<void(FtpTransferResult)> done) {
  sim::Executor ex = vm_.node().executor();
  sim::Time started = ex.now();
  auto& conn = vm_.node().tcp().connect(server_, [] {});
  conn.send(to_bytes("GET " + name + "\n"));
  auto state = std::make_shared<std::pair<std::int64_t, std::uint64_t>>(-1, 0);
  auto header = std::make_shared<Bytes>();
  auto conn_ptr = &conn;
  conn.set_on_data([state, header, done, started, ex,
                    conn_ptr](Buf data) {
    if (state->first < 0) {
      data.append_to(*header);
      auto line = take_line(*header);
      if (!line) return;
      state->first = std::stoll(*line);
      state->second = header->size();  // leftover payload
      header->clear();
    } else {
      state->second += data.size();
    }
    if (state->first >= 0 &&
        state->second >= static_cast<std::uint64_t>(state->first)) {
      FtpTransferResult result;
      result.bytes = state->second;
      result.seconds = sim::to_seconds(ex.now() - started);
      if (result.seconds > 0) {
        result.mb_per_s = static_cast<double>(result.bytes) /
                          (1024.0 * 1024.0) / result.seconds;
      }
      conn_ptr->close();
      done(result);
    }
  });
}

}  // namespace storm::workload
