// Fio-like micro-benchmark: N jobs issue synchronous block I/O in a
// closed loop against a BlockDevice, sweeping request size, parallelism
// and read/write mix — the knobs of the paper's Figures 4-9 runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "block/block_device.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace storm::workload {

struct FioConfig {
  std::uint32_t request_bytes = 4096;  // per-I/O size (sector multiple)
  unsigned jobs = 1;                   // parallel workers ("threads")
  double write_ratio = 0.5;            // 0..1, paper uses 50/50
  bool random_offsets = true;
  sim::Duration duration = sim::seconds(10);
  std::uint64_t seed = 42;
};

struct FioResult {
  std::uint64_t total_ops = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  double iops = 0;
  double throughput_mb_s = 0;
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
};

class FioRunner {
 public:
  /// `executor` is where the job loops run — pass the partition of the
  /// VM (or host) driving the device; converts implicitly from
  /// Simulator& for single-partition callers.
  FioRunner(sim::Executor executor, block::BlockDevice& device,
            FioConfig config);

  /// Start all jobs; `done` fires when the run duration elapses (jobs
  /// retire in-flight requests first).
  void start(std::function<void(FioResult)> done);

 private:
  void job_loop(unsigned job_index);
  void finish_if_done();

  sim::Executor sim_;
  block::BlockDevice& dev_;
  FioConfig config_;
  Rng rng_;
  sim::Time deadline_ = 0;
  unsigned jobs_running_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  obs::Histogram latency_ns_;
  sim::Time started_ = 0;
  std::function<void(FioResult)> done_;
};

}  // namespace storm::workload
