#include "workload/postmark.hpp"

namespace storm::workload {

PostmarkRunner::PostmarkRunner(sim::Executor executor, fs::SimExt& filesystem,
                               PostmarkConfig config)
    : sim_(executor), fs_(filesystem), config_(config), rng_(config.seed) {}

void PostmarkRunner::run(std::function<void(PostmarkResult)> done) {
  done_ = std::move(done);
  setup_dirs(0);
}

void PostmarkRunner::setup_dirs(unsigned index) {
  if (index == config_.directories) {
    create_initial(0);
    return;
  }
  fs_.mkdir("/d" + std::to_string(index), [this, index](Status status) {
    if (!status.is_ok()) ++errors_;
    setup_dirs(index + 1);
  });
}

std::string PostmarkRunner::fresh_name() {
  unsigned dir = static_cast<unsigned>(next_file_id_ % config_.directories);
  return "/d" + std::to_string(dir) + "/f" + std::to_string(next_file_id_++);
}

std::string PostmarkRunner::random_existing() {
  return files_[rng_.below(files_.size())];
}

void PostmarkRunner::create_initial(unsigned index) {
  if (index == config_.initial_files) {
    phase_start_ = sim_.now();
    transaction(0);
    return;
  }
  std::string name = fresh_name();
  std::uint32_t size = static_cast<std::uint32_t>(
      rng_.between(config_.min_file_bytes, config_.max_file_bytes));
  fs_.create(name, [this, index, name, size](Status status) {
    if (!status.is_ok()) {
      ++errors_;
      create_initial(index + 1);
      return;
    }
    Bytes data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng_.next_u32());
    fs_.write_file(name, 0, std::move(data),
                   [this, index, name](Status write_status) {
                     if (!write_status.is_ok()) ++errors_;
                     files_.push_back(name);
                     create_initial(index + 1);
                   });
  });
}

void PostmarkRunner::transaction(unsigned index) {
  if (index == config_.transactions || files_.empty()) {
    finish();
    return;
  }
  auto next = [this, index, op_start = sim_.now()](Status status) {
    if (!status.is_ok()) ++errors_;
    if (latency_sink_) latency_sink_(sim_.now() - op_start);
    transaction(index + 1);
  };

  switch (rng_.below(4)) {
    case 0: {  // whole-file read
      std::string name = random_existing();
      fs_.read_file(name, 0, config_.max_file_bytes,
                    [this, next](Status status, Bytes data) {
                      ++reads_;
                      bytes_read_ += data.size();
                      next(status);
                    });
      return;
    }
    case 1: {  // append
      std::string name = random_existing();
      fs_.stat(name, [this, name, next](Status status, fs::StatInfo info) {
        if (!status.is_ok()) {
          next(status);
          return;
        }
        Bytes data(config_.append_bytes);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng_.next_u32());
        bytes_written_ += data.size();
        fs_.write_file(name, info.size, std::move(data),
                       [this, next](Status write_status) {
                         ++appends_;
                         next(write_status);
                       });
      });
      return;
    }
    case 2: {  // create (with a small body, as PostMark does)
      std::string name = fresh_name();
      fs_.create(name, [this, name, next](Status status) {
        if (!status.is_ok()) {
          next(status);
          return;
        }
        std::uint32_t size = static_cast<std::uint32_t>(rng_.between(
            config_.min_file_bytes, config_.max_file_bytes));
        Bytes data(size);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng_.next_u32());
        bytes_written_ += data.size();
        fs_.write_file(name, 0, std::move(data),
                       [this, name, next](Status write_status) {
                         ++creates_;
                         files_.push_back(name);
                         next(write_status);
                       });
      });
      return;
    }
    default: {  // delete
      if (files_.size() <= 2) {
        transaction(index + 1);
        return;
      }
      std::size_t victim = rng_.below(files_.size());
      std::string name = files_[victim];
      files_.erase(files_.begin() + static_cast<std::ptrdiff_t>(victim));
      fs_.unlink(name, [this, next](Status status) {
        ++deletes_;
        next(status);
      });
      return;
    }
  }
}

void PostmarkRunner::finish() {
  PostmarkResult result;
  result.elapsed_s = sim::to_seconds(sim_.now() - phase_start_);
  if (result.elapsed_s > 0) {
    result.read_ops_per_s = static_cast<double>(reads_) / result.elapsed_s;
    result.append_ops_per_s =
        static_cast<double>(appends_) / result.elapsed_s;
    result.create_ops_per_s =
        static_cast<double>(creates_) / result.elapsed_s;
    result.delete_ops_per_s =
        static_cast<double>(deletes_) / result.elapsed_s;
    result.read_mb_per_s = static_cast<double>(bytes_read_) /
                           (1024.0 * 1024.0) / result.elapsed_s;
    result.write_mb_per_s = static_cast<double>(bytes_written_) /
                            (1024.0 * 1024.0) / result.elapsed_s;
  }
  result.errors = errors_;
  done_(result);
}

}  // namespace storm::workload
