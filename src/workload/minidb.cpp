#include "workload/minidb.hpp"

#include "common/log.hpp"

namespace storm::workload {

MiniDb::MiniDb(sim::Executor executor, block::BlockDevice& device,
               MiniDbConfig config)
    : sim_(executor), dev_(device), config_(config) {}

void MiniDb::init(std::function<void(Status)> done) {
  // WAL header page + zeroed record area; records are written in large
  // batches to keep formatting fast.
  Bytes wal(block::kSectorSize, 0);
  wal[0] = 'W';
  wal[1] = 'A';
  wal[2] = 'L';
  dev_.write(kWalLba, std::move(wal), [this, done](Status status) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    auto step = std::make_shared<std::function<void(std::uint32_t)>>();
    *step = [this, done, step](std::uint32_t record) {
      if (record >= config_.records) {
        done(Status::ok());
        return;
      }
      // Format in 256-sector batches to keep initialization fast.
      std::uint32_t n = std::min(256u, config_.records - record);
      Bytes batch(static_cast<std::size_t>(n) * block::kSectorSize, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        batch[static_cast<std::size_t>(i) * block::kSectorSize] =
            static_cast<std::uint8_t>((record + i) & 0xFF);
      }
      dev_.write(record_lba(record), std::move(batch),
                 [done, step, record, n](Status status) {
                   if (!status.is_ok()) {
                     done(status);
                     return;
                   }
                   (*step)(record + n);
                 });
    };
    (*step)(0);
  });
}

void MiniDb::transaction(Rng& rng, std::function<void(Status)> done) {
  // Pick the working set.
  auto reads = std::make_shared<std::vector<std::uint32_t>>();
  for (unsigned i = 0; i < config_.reads_per_txn; ++i) {
    reads->push_back(static_cast<std::uint32_t>(rng.below(config_.records)));
  }
  auto writes = std::make_shared<std::vector<std::uint32_t>>();
  for (unsigned i = 0; i < config_.writes_per_txn; ++i) {
    writes->push_back(static_cast<std::uint32_t>(rng.below(config_.records)));
  }
  std::uint64_t txn_id = next_txn_id_++;

  // Phase 1: read the record pages.
  auto read_step = std::make_shared<std::function<void(std::size_t)>>();
  *read_step = [this, reads, writes, txn_id, done,
                read_step](std::size_t index) {
    if (index == reads->size()) {
      // Phase 2: WAL append (one sector describing the transaction).
      Bytes wal(block::kSectorSize, 0);
      for (int i = 0; i < 8; ++i) {
        wal[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(txn_id >> (8 * i));
      }
      dev_.write(kWalLba, std::move(wal),
                 [this, writes, txn_id, done](Status status) {
                   if (!status.is_ok()) {
                     done(status);
                     return;
                   }
                   // Phase 3: update the data pages.
                   auto write_step =
                       std::make_shared<std::function<void(std::size_t)>>();
                   *write_step = [this, writes, txn_id, done,
                                  write_step](std::size_t windex) {
                     if (windex == writes->size()) {
                       ++committed_;
                       done(Status::ok());
                       return;
                     }
                     Bytes page(block::kSectorSize, 0);
                     for (int i = 0; i < 8; ++i) {
                       page[static_cast<std::size_t>(i)] =
                           static_cast<std::uint8_t>(txn_id >> (8 * i));
                     }
                     dev_.write(record_lba((*writes)[windex]),
                                std::move(page),
                                [done, write_step, windex](Status s) {
                                  if (!s.is_ok()) {
                                    done(s);
                                    return;
                                  }
                                  (*write_step)(windex + 1);
                                });
                   };
                   (*write_step)(0);
                 });
      return;
    }
    dev_.read(record_lba((*reads)[index]), 1,
              [done, read_step, index](Status status, Bytes) {
                if (!status.is_ok()) {
                  done(status);
                  return;
                }
                (*read_step)(index + 1);
              });
  };
  (*read_step)(0);
}

// ---------------------------------------------------------------- DbServer

DbServer::DbServer(cloud::Vm& vm, MiniDb& db, std::uint16_t port)
    : vm_(vm), db_(db), port_(port) {}

void DbServer::start() {
  vm_.node().tcp().listen(port_, [this](net::TcpConnection& conn) {
    auto pending = std::make_shared<std::size_t>(0);
    conn.set_on_data([this, &conn, pending](Buf data) {
      // Each newline is one transaction request.
      for (std::uint8_t byte : data) {
        if (byte != '\n') continue;
        ++*pending;
      }
      // Execute queued requests sequentially (one server worker per
      // connection, like a MySQL session thread).
      auto step = std::make_shared<std::function<void()>>();
      *step = [this, &conn, pending, step] {
        if (*pending == 0) return;
        --*pending;
        // Small query-parse/plan cost on the DB VM's CPU.
        vm_.cpu().run(sim::microseconds(30), [this, &conn, step] {
          db_.transaction(rng_, [this, &conn, step](Status status) {
            ++served_;
            conn.send(to_bytes(status.is_ok() ? "OK\n" : "ERR\n"));
            (*step)();
          });
        });
      };
      (*step)();
    });
  });
}

// --------------------------------------------------------------- OltpClient

OltpClient::OltpClient(cloud::Vm& vm, net::SocketAddr server,
                       unsigned threads)
    : vm_(vm), server_(server), threads_(threads) {}

void OltpClient::start(sim::Time deadline, std::function<void()> done) {
  deadline_ = deadline;
  done_ = std::move(done);
  running_ = threads_;
  for (unsigned i = 0; i < threads_; ++i) {
    auto& conn = vm_.node().tcp().connect(server_, [] {});
    thread_loop(&conn);
  }
}

void OltpClient::thread_loop(net::TcpConnection* conn) {
  sim::Executor sim = vm_.node().executor();
  if (sim.now() >= deadline_) {
    conn->close();
    if (--running_ == 0 && done_) done_();
    return;
  }
  conn->send(to_bytes("TXN\n"));
  // One outstanding request per thread: wait for the reply line.
  conn->set_on_data([this, conn](Buf reply) {
    sim::Executor sim2 = vm_.node().executor();
    for (std::uint8_t byte : reply) {
      if (byte != '\n') continue;
      std::size_t bucket = static_cast<std::size_t>(
          sim2.now() / sim::seconds(1));
      if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
      ++buckets_[bucket];
      ++total_;
    }
    thread_loop(conn);
  });
}

}  // namespace storm::workload
