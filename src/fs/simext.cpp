#include "fs/simext.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace storm::fs {

// ---------------------------------------------------------------- utilities

Result<std::vector<std::string>> split_path(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return error(ErrorCode::kInvalidArgument, "path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  std::size_t pos = 1;
  while (pos <= path.size()) {
    std::size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    std::string part = path.substr(pos, next - pos);
    if (!part.empty()) {
      if (part.size() > kMaxNameLen) {
        return error(ErrorCode::kInvalidArgument, "name too long: " + part);
      }
      parts.push_back(std::move(part));
    }
    pos = next + 1;
  }
  return parts;
}

/// Join N async sub-operations into one completion with first-error-wins.
struct SimExt::Joiner : std::enable_shared_from_this<SimExt::Joiner> {
  int outstanding = 0;
  bool sealed = false;
  Status first_error = Status::ok();
  std::function<void(Status)> on_done;

  static std::shared_ptr<Joiner> make(std::function<void(Status)> done) {
    auto joiner = std::make_shared<Joiner>();
    joiner->on_done = std::move(done);
    return joiner;
  }

  /// Register one sub-operation; call the returned functor on completion.
  std::function<void(Status)> begin() {
    ++outstanding;
    auto self = shared_from_this();
    return [self](Status status) {
      if (!status.is_ok() && self->first_error.is_ok()) {
        self->first_error = status;
      }
      --self->outstanding;
      self->maybe_fire();
    };
  }

  void seal() {
    sealed = true;
    maybe_fire();
  }

 private:
  void maybe_fire() {
    if (sealed && outstanding == 0 && on_done) {
      auto done = std::move(on_done);
      on_done = nullptr;
      done(first_error);
    }
  }
};

// ------------------------------------------------------------------- mkfs

SimExt::SimExt(sim::Executor executor, block::BlockDevice& device,
               Options options)
    : sim_(executor), dev_(device), options_(options) {}

Status SimExt::mkfs(block::MemDisk& disk) {
  SuperBlock sb;
  sb.blocks_per_group = 1024;
  sb.inodes_per_group = 512;
  sb.total_blocks =
      static_cast<std::uint32_t>(disk.num_sectors() / kSectorsPerBlock);
  if (sb.total_blocks < 1 + sb.blocks_per_group) {
    return error(ErrorCode::kInvalidArgument,
                 "device too small for SimExt (needs >= " +
                     std::to_string((1 + sb.blocks_per_group) * kBlockSize) +
                     " bytes)");
  }
  sb.num_groups = (sb.total_blocks - 1) / sb.blocks_per_group;

  auto write_block = [&](std::uint32_t block, const Bytes& data) {
    disk.write_sync(static_cast<std::uint64_t>(block) * kSectorsPerBlock,
                    data);
  };

  write_block(0, sb.serialize());
  for (std::uint32_t g = 0; g < sb.num_groups; ++g) {
    Bytes block_bitmap(kBlockSize, 0);
    for (std::uint32_t i = 0; i < sb.group_meta_blocks(); ++i) {
      bitmap_set(block_bitmap, i, true);
    }
    write_block(sb.group_first_block(g), block_bitmap);

    Bytes inode_bitmap(kBlockSize, 0);
    if (g == 0) {
      bitmap_set(inode_bitmap, 0, true);          // inode 0 reserved
      bitmap_set(inode_bitmap, kRootInode, true);  // root directory
    }
    write_block(sb.group_first_block(g) + 1, inode_bitmap);
  }

  // Root directory inode (empty directory, no data blocks yet).
  Inode root;
  root.type = InodeType::kDirectory;
  root.links = 1;
  auto [root_block, root_off] = inode_location(sb, kRootInode);
  Bytes table_block(kBlockSize, 0);
  root.serialize_into(
      std::span<std::uint8_t>(table_block.data() + root_off, kInodeSize));
  write_block(root_block, table_block);
  return Status::ok();
}

// ------------------------------------------------------------------- mount

void SimExt::mount(DoneCb done) {
  dev_.read(0, kSectorsPerBlock, [this, done](Status status, Bytes data) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    auto parsed = SuperBlock::parse(data);
    if (!parsed.is_ok()) {
      done(parsed.status());
      return;
    }
    sb_ = parsed.value();
    // Prefetch every group's allocation bitmaps so allocation decisions
    // are synchronous afterwards (a mount-time metadata scan, like
    // loading group descriptors in ext*).
    std::vector<std::uint32_t> bitmaps;
    for (std::uint32_t g = 0; g < sb_.num_groups; ++g) {
      bitmaps.push_back(sb_.group_first_block(g));
      bitmaps.push_back(sb_.group_first_block(g) + 1);
    }
    ensure_blocks(std::move(bitmaps), [this, done](Status s) {
      if (s.is_ok()) mounted_ = true;
      done(s);
    });
  });
}

// --------------------------------------------------------------- op queue

void SimExt::enqueue(std::function<void(DoneCb)> op, DoneCb user_done) {
  op_queue_.emplace_back(std::move(op), std::move(user_done));
  if (!op_running_) run_next();
}

void SimExt::run_next() {
  if (op_queue_.empty()) {
    op_running_ = false;
    return;
  }
  op_running_ = true;
  auto [op, user_done] = std::move(op_queue_.front());
  op_queue_.pop_front();
  op([this, user_done = std::move(user_done)](Status status) {
    user_done(status);
    // Defer to break recursion chains on long op queues.
    sim_.schedule_in(0, [this] { run_next(); });
  });
}

// --------------------------------------------------------------- cache

void SimExt::ensure_block(std::uint32_t block, DoneCb done) {
  if (cache_.contains(block)) {
    done(Status::ok());
    return;
  }
  dev_.read(static_cast<std::uint64_t>(block) * kSectorsPerBlock,
            kSectorsPerBlock, [this, block, done](Status status, Bytes data) {
              if (!status.is_ok()) {
                done(status);
                return;
              }
              cache_.emplace(block, std::move(data));
              done(Status::ok());
            });
}

void SimExt::ensure_blocks(std::vector<std::uint32_t> blocks, DoneCb done) {
  auto join = Joiner::make(std::move(done));
  for (std::uint32_t block : blocks) {
    ensure_block(block, join->begin());
  }
  join->seal();
}

Bytes& SimExt::cached(std::uint32_t block) {
  auto it = cache_.find(block);
  if (it == cache_.end()) {
    throw std::logic_error("SimExt: block not cached: " +
                           std::to_string(block));
  }
  return it->second;
}

void SimExt::mark_dirty(std::uint32_t block,
                        const std::shared_ptr<Joiner>& join) {
  if (options_.writeback_delay == 0) {
    // Coalesce repeated dirtying of the same metadata block within one
    // event tick (e.g. 64 bitmap updates while mapping one large write)
    // into a single device write, as a real buffer cache would.
    auto [it, fresh] = pending_meta_.try_emplace(block);
    it->second.push_back(join->begin());
    if (fresh) {
      sim_.schedule_in(0, [this, block] {
        auto node = pending_meta_.extract(block);
        if (node.empty()) return;
        Bytes copy = cached(block);
        dev_.write(static_cast<std::uint64_t>(block) * kSectorsPerBlock,
                   std::move(copy),
                   [waiters = std::move(node.mapped())](Status status) {
                     for (const auto& waiter : waiters) waiter(status);
                   });
      });
    }
    return;
  }
  dirty_.insert(block);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    sim_.schedule_in(options_.writeback_delay, [this] {
      flush_scheduled_ = false;
      flush_dirty([](Status) {});
    });
  }
}

void SimExt::flush_dirty(DoneCb done) {
  auto join = Joiner::make(std::move(done));
  for (std::uint32_t block : dirty_) {
    Bytes copy = cached(block);
    dev_.write(static_cast<std::uint64_t>(block) * kSectorsPerBlock,
               std::move(copy), join->begin());
  }
  dirty_.clear();
  for (auto& [lba, data] : pending_data_) {
    dev_.write(lba, std::move(data), join->begin());
  }
  pending_data_.clear();
  join->seal();
}

void SimExt::flush(DoneCb done) {
  enqueue([this](DoneCb finish) { flush_dirty(std::move(finish)); },
          std::move(done));
}

void SimExt::drop_caches() {
  // Keep bitmaps (allocator state) and anything dirty.
  std::set<std::uint32_t> keep = dirty_;
  for (std::uint32_t g = 0; g < sb_.num_groups; ++g) {
    keep.insert(sb_.group_first_block(g));
    keep.insert(sb_.group_first_block(g) + 1);
  }
  std::erase_if(cache_, [&](const auto& kv) { return !keep.contains(kv.first); });
}

// --------------------------------------------------------------- inodes

std::uint32_t SimExt::inode_block(std::uint32_t ino) const {
  return inode_location(sb_, ino).first;
}

Inode SimExt::get_inode(std::uint32_t ino) {
  auto [block, offset] = inode_location(sb_, ino);
  const Bytes& data = cached(block);
  return Inode::parse(
      std::span<const std::uint8_t>(data.data() + offset, kInodeSize));
}

void SimExt::put_inode(std::uint32_t ino, const Inode& inode,
                       const std::shared_ptr<Joiner>& join) {
  auto [block, offset] = inode_location(sb_, ino);
  Bytes& data = cached(block);
  inode.serialize_into(std::span<std::uint8_t>(data.data() + offset,
                                               kInodeSize));
  mark_dirty(block, join);
}

// ------------------------------------------------------------- allocation

Result<std::uint32_t> SimExt::alloc_inode(
    const std::shared_ptr<Joiner>& join) {
  for (std::uint32_t g = 0; g < sb_.num_groups; ++g) {
    std::uint32_t bitmap_block = sb_.group_first_block(g) + 1;
    Bytes& bitmap = cached(bitmap_block);
    auto index = bitmap_find_clear(bitmap, sb_.inodes_per_group);
    if (!index) continue;
    bitmap_set(bitmap, *index, true);
    mark_dirty(bitmap_block, join);
    return g * sb_.inodes_per_group + *index;
  }
  return error(ErrorCode::kOutOfSpace, "no free inodes");
}

Result<std::uint32_t> SimExt::alloc_block(
    const std::shared_ptr<Joiner>& join) {
  for (std::uint32_t g = 0; g < sb_.num_groups; ++g) {
    std::uint32_t bitmap_block = sb_.group_first_block(g);
    Bytes& bitmap = cached(bitmap_block);
    auto index = bitmap_find_clear(bitmap, sb_.blocks_per_group);
    if (!index) continue;
    std::uint32_t block = sb_.group_first_block(g) + *index;
    if (block >= sb_.total_blocks) continue;  // truncated last group
    bitmap_set(bitmap, *index, true);
    mark_dirty(bitmap_block, join);
    return block;
  }
  return error(ErrorCode::kOutOfSpace, "no free blocks");
}

void SimExt::free_inode(std::uint32_t ino,
                        const std::shared_ptr<Joiner>& join) {
  std::uint32_t g = inode_group(sb_, ino);
  std::uint32_t bitmap_block = sb_.group_first_block(g) + 1;
  Bytes& bitmap = cached(bitmap_block);
  bitmap_set(bitmap, ino % sb_.inodes_per_group, false);
  mark_dirty(bitmap_block, join);
}

void SimExt::free_block(std::uint32_t block,
                        const std::shared_ptr<Joiner>& join) {
  std::uint32_t g = (block - 1) / sb_.blocks_per_group;
  std::uint32_t bitmap_block = sb_.group_first_block(g);
  Bytes& bitmap = cached(bitmap_block);
  bitmap_set(bitmap, block - sb_.group_first_block(g), false);
  mark_dirty(bitmap_block, join);
  cache_.erase(block);
  dirty_.erase(block);
}

std::uint32_t SimExt::free_data_blocks() const {
  std::uint32_t free = 0;
  for (std::uint32_t g = 0; g < sb_.num_groups; ++g) {
    auto it = cache_.find(sb_.group_first_block(g));
    if (it == cache_.end()) continue;
    for (std::uint32_t i = 0; i < sb_.blocks_per_group; ++i) {
      if (!bitmap_get(it->second, i)) ++free;
    }
  }
  return free;
}

// --------------------------------------------------------------- resolve

void SimExt::resolve(const std::string& path, ResolveCb done) {
  auto parts = split_path(path);
  if (!parts.is_ok()) {
    done(parts.status(), {});
    return;
  }
  if (parts.value().empty()) {
    done(Status::ok(), Resolved{0, kRootInode, ""});
    return;
  }
  auto shared =
      std::make_shared<std::vector<std::string>>(std::move(parts).take());
  resolve_step(shared, 0, kRootInode, std::move(done));
}

void SimExt::resolve_step(std::shared_ptr<std::vector<std::string>> parts,
                          std::size_t index, std::uint32_t current,
                          ResolveCb done) {
  ensure_block(inode_block(current), [this, parts, index, current,
                                      done](Status status) {
    if (!status.is_ok()) {
      done(status, {});
      return;
    }
    Inode dir = get_inode(current);
    if (dir.type != InodeType::kDirectory) {
      done(error(ErrorCode::kInvalidArgument, "not a directory"), {});
      return;
    }
    const std::string& name = (*parts)[index];
    dir_scan(dir, name,
             [this, parts, index, current, name, done](
                 Status scan_status, std::uint32_t ino, std::uint32_t,
                 std::uint32_t) {
               if (!scan_status.is_ok()) {
                 done(scan_status, {});
                 return;
               }
               bool last = index + 1 == parts->size();
               if (last) {
                 done(Status::ok(), Resolved{current, ino, name});
                 return;
               }
               if (ino == 0) {
                 done(error(ErrorCode::kNotFound, "no such path component: " +
                                                      name),
                      {});
                 return;
               }
               resolve_step(parts, index + 1, ino, done);
             });
  });
}

void SimExt::dir_scan(
    const Inode& dir, const std::string& name,
    std::function<void(Status, std::uint32_t, std::uint32_t, std::uint32_t)>
        done) {
  std::vector<std::uint32_t> blocks;
  for (std::uint32_t block : dir.direct) {
    if (block != 0) blocks.push_back(block);
  }
  ensure_blocks(blocks, [this, blocks, name, done](Status status) {
    if (!status.is_ok()) {
      done(status, 0, 0, 0);
      return;
    }
    for (std::uint32_t block : blocks) {
      const Bytes& data = cached(block);
      for (std::uint32_t slot = 0; slot < kDirEntriesPerBlock; ++slot) {
        DirEntry entry = DirEntry::parse(std::span<const std::uint8_t>(
            data.data() + slot * kDirEntrySize, kDirEntrySize));
        if (entry.inode != 0 && entry.name == name) {
          done(Status::ok(), entry.inode, block, slot * kDirEntrySize);
          return;
        }
      }
    }
    done(Status::ok(), 0, 0, 0);
  });
}

void SimExt::dir_add_entry(std::uint32_t dir_ino, const DirEntry& entry,
                           DoneCb done) {
  ensure_block(inode_block(dir_ino), [this, dir_ino, entry,
                                      done](Status status) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    Inode dir = get_inode(dir_ino);
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t block : dir.direct) {
      if (block != 0) blocks.push_back(block);
    }
    ensure_blocks(blocks, [this, dir_ino, entry, done](Status s) {
      if (!s.is_ok()) {
        done(s);
        return;
      }
      auto join = Joiner::make(done);
      Inode dir = get_inode(dir_ino);
      // Find a free slot in existing blocks.
      for (std::uint32_t block : dir.direct) {
        if (block == 0) continue;
        Bytes& data = cached(block);
        for (std::uint32_t slot = 0; slot < kDirEntriesPerBlock; ++slot) {
          DirEntry existing = DirEntry::parse(std::span<const std::uint8_t>(
              data.data() + slot * kDirEntrySize, kDirEntrySize));
          if (existing.inode == 0) {
            entry.serialize_into(std::span<std::uint8_t>(
                data.data() + slot * kDirEntrySize, kDirEntrySize));
            mark_dirty(block, join);
            join->seal();
            return;
          }
        }
      }
      // All blocks full: grow the directory by one block.
      for (auto& slot : dir.direct) {
        if (slot != 0) continue;
        auto block = alloc_block(join);
        if (!block.is_ok()) {
          join->begin()(block.status());
          join->seal();
          return;
        }
        slot = block.value();
        dir.size += kBlockSize;
        // Inode first, then the new directory block: a block-level
        // observer must see the mapping before the mapped content
        // (semantics reconstruction relies on this ordering).
        put_inode(dir_ino, dir, join);
        cache_[slot] = Bytes(kBlockSize, 0);
        Bytes& data = cached(slot);
        entry.serialize_into(
            std::span<std::uint8_t>(data.data(), kDirEntrySize));
        mark_dirty(slot, join);
        join->seal();
        return;
      }
      join->begin()(error(ErrorCode::kOutOfSpace, "directory full"));
      join->seal();
    });
  });
}

void SimExt::dir_remove_entry(std::uint32_t dir_ino, const std::string& name,
                              DoneCb done) {
  ensure_block(inode_block(dir_ino), [this, dir_ino, name,
                                      done](Status status) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    Inode dir = get_inode(dir_ino);
    dir_scan(dir, name,
             [this, done](Status s, std::uint32_t ino, std::uint32_t block,
                          std::uint32_t offset) {
               if (!s.is_ok()) {
                 done(s);
                 return;
               }
               if (ino == 0) {
                 done(error(ErrorCode::kNotFound, "entry not found"));
                 return;
               }
               auto join = Joiner::make(done);
               Bytes& data = cached(block);
               std::memset(data.data() + offset, 0, kDirEntrySize);
               mark_dirty(block, join);
               join->seal();
             });
  });
}

// ---------------------------------------------------------- block mapping

void SimExt::map_block(Inode& inode, std::uint32_t index, bool allocate,
                       std::shared_ptr<Joiner> join,
                       std::function<void(Status, std::uint32_t)> done) {
  auto alloc_table_block = [this, join](std::uint32_t& slot) -> Status {
    auto block = alloc_block(join);
    if (!block.is_ok()) return block.status();
    slot = block.value();
    cache_[slot] = Bytes(kBlockSize, 0);
    mark_dirty(slot, join);
    return Status::ok();
  };

  if (index < kDirectBlocks) {
    if (inode.direct[index] == 0 && allocate) {
      auto block = alloc_block(join);
      if (!block.is_ok()) {
        done(block.status(), 0);
        return;
      }
      inode.direct[index] = block.value();
    }
    done(Status::ok(), inode.direct[index]);
    return;
  }

  std::uint32_t rel = index - kDirectBlocks;
  if (rel < kPointersPerBlock) {
    if (inode.indirect == 0) {
      if (!allocate) {
        done(Status::ok(), 0);
        return;
      }
      Status s = alloc_table_block(inode.indirect);
      if (!s.is_ok()) {
        done(s, 0);
        return;
      }
    }
    std::uint32_t table = inode.indirect;
    ensure_block(table, [this, table, rel, allocate, join,
                         done](Status status) {
      if (!status.is_ok()) {
        done(status, 0);
        return;
      }
      Bytes& data = cached(table);
      std::uint8_t* slot = data.data() + rel * 4;
      std::uint32_t value = (std::uint32_t(slot[0]) << 24) |
                            (std::uint32_t(slot[1]) << 16) |
                            (std::uint32_t(slot[2]) << 8) | slot[3];
      if (value == 0 && allocate) {
        auto block = alloc_block(join);
        if (!block.is_ok()) {
          done(block.status(), 0);
          return;
        }
        value = block.value();
        slot[0] = static_cast<std::uint8_t>(value >> 24);
        slot[1] = static_cast<std::uint8_t>(value >> 16);
        slot[2] = static_cast<std::uint8_t>(value >> 8);
        slot[3] = static_cast<std::uint8_t>(value);
        mark_dirty(table, join);
      }
      done(Status::ok(), value);
    });
    return;
  }

  rel -= kPointersPerBlock;
  if (rel >= kPointersPerBlock * kPointersPerBlock) {
    done(error(ErrorCode::kInvalidArgument, "file too large"), 0);
    return;
  }
  if (inode.dindirect == 0) {
    if (!allocate) {
      done(Status::ok(), 0);
      return;
    }
    Status s = alloc_table_block(inode.dindirect);
    if (!s.is_ok()) {
      done(s, 0);
      return;
    }
  }
  std::uint32_t l1_block = inode.dindirect;
  std::uint32_t l1_index = rel / kPointersPerBlock;
  std::uint32_t l2_index = rel % kPointersPerBlock;
  ensure_block(l1_block, [this, l1_block, l1_index, l2_index, allocate, join,
                          done, alloc_table_block](Status status) mutable {
    if (!status.is_ok()) {
      done(status, 0);
      return;
    }
    Bytes& l1 = cached(l1_block);
    std::uint8_t* l1_slot = l1.data() + l1_index * 4;
    std::uint32_t l2_block = (std::uint32_t(l1_slot[0]) << 24) |
                             (std::uint32_t(l1_slot[1]) << 16) |
                             (std::uint32_t(l1_slot[2]) << 8) | l1_slot[3];
    if (l2_block == 0) {
      if (!allocate) {
        done(Status::ok(), 0);
        return;
      }
      Status s = alloc_table_block(l2_block);
      if (!s.is_ok()) {
        done(s, 0);
        return;
      }
      l1_slot[0] = static_cast<std::uint8_t>(l2_block >> 24);
      l1_slot[1] = static_cast<std::uint8_t>(l2_block >> 16);
      l1_slot[2] = static_cast<std::uint8_t>(l2_block >> 8);
      l1_slot[3] = static_cast<std::uint8_t>(l2_block);
      mark_dirty(l1_block, join);
    }
    ensure_block(l2_block, [this, l2_block, l2_index, allocate, join,
                            done](Status s2) {
      if (!s2.is_ok()) {
        done(s2, 0);
        return;
      }
      Bytes& l2 = cached(l2_block);
      std::uint8_t* slot = l2.data() + l2_index * 4;
      std::uint32_t value = (std::uint32_t(slot[0]) << 24) |
                            (std::uint32_t(slot[1]) << 16) |
                            (std::uint32_t(slot[2]) << 8) | slot[3];
      if (value == 0 && allocate) {
        auto block = alloc_block(join);
        if (!block.is_ok()) {
          done(block.status(), 0);
          return;
        }
        value = block.value();
        slot[0] = static_cast<std::uint8_t>(value >> 24);
        slot[1] = static_cast<std::uint8_t>(value >> 16);
        slot[2] = static_cast<std::uint8_t>(value >> 8);
        slot[3] = static_cast<std::uint8_t>(value);
        mark_dirty(l2_block, join);
      }
      done(Status::ok(), value);
    });
  });
}

void SimExt::free_file_blocks(const Inode& inode,
                              std::shared_ptr<Joiner> join, DoneCb done) {
  for (std::uint32_t block : inode.direct) {
    if (block != 0) free_block(block, join);
  }
  auto free_table = [this, join](std::uint32_t table, auto&& next) {
    ensure_block(table, [this, table, join, next](Status status) {
      if (!status.is_ok()) {
        next(status);
        return;
      }
      const Bytes& data = cached(table);
      std::vector<std::uint32_t> children;
      for (std::uint32_t i = 0; i < kPointersPerBlock; ++i) {
        const std::uint8_t* slot = data.data() + i * 4;
        std::uint32_t value = (std::uint32_t(slot[0]) << 24) |
                              (std::uint32_t(slot[1]) << 16) |
                              (std::uint32_t(slot[2]) << 8) | slot[3];
        if (value != 0) children.push_back(value);
      }
      for (std::uint32_t child : children) free_block(child, join);
      free_block(table, join);
      next(Status::ok());
    });
  };

  if (inode.indirect == 0 && inode.dindirect == 0) {
    done(Status::ok());
    return;
  }
  auto after_indirect = [this, inode, join, done, free_table](Status status) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    if (inode.dindirect == 0) {
      done(Status::ok());
      return;
    }
    // Double indirect: free each L2 table (and its children), then the L1.
    std::uint32_t l1_block = inode.dindirect;
    ensure_block(l1_block, [this, l1_block, join, done,
                            free_table](Status s) {
      if (!s.is_ok()) {
        done(s);
        return;
      }
      const Bytes& l1 = cached(l1_block);
      auto l2_blocks = std::make_shared<std::vector<std::uint32_t>>();
      for (std::uint32_t i = 0; i < kPointersPerBlock; ++i) {
        const std::uint8_t* slot = l1.data() + i * 4;
        std::uint32_t value = (std::uint32_t(slot[0]) << 24) |
                              (std::uint32_t(slot[1]) << 16) |
                              (std::uint32_t(slot[2]) << 8) | slot[3];
        if (value != 0) l2_blocks->push_back(value);
      }
      // Free L2 tables sequentially.
      auto step = std::make_shared<std::function<void(std::size_t)>>();
      *step = [this, l2_blocks, l1_block, join, done, free_table,
               step](std::size_t i) {
        if (i == l2_blocks->size()) {
          free_block(l1_block, join);
          done(Status::ok());
          return;
        }
        free_table((*l2_blocks)[i], [step, i, done](Status s2) {
          if (!s2.is_ok()) {
            done(s2);
            return;
          }
          (*step)(i + 1);
        });
      };
      (*step)(0);
    });
  };

  if (inode.indirect != 0) {
    free_table(inode.indirect, after_indirect);
  } else {
    after_indirect(Status::ok());
  }
}

// --------------------------------------------------------------- op bodies

void SimExt::create(const std::string& path, DoneCb done) {
  enqueue([this, path](DoneCb finish) {
    do_create(path, InodeType::kFile, std::move(finish));
  }, std::move(done));
}

void SimExt::mkdir(const std::string& path, DoneCb done) {
  enqueue([this, path](DoneCb finish) {
    do_create(path, InodeType::kDirectory, std::move(finish));
  }, std::move(done));
}

void SimExt::do_create(const std::string& path, InodeType type, DoneCb done) {
  resolve(path, [this, type, done](Status status, Resolved resolved) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    if (resolved.inode != 0 || resolved.parent == 0) {
      done(error(ErrorCode::kAlreadyExists, "path exists"));
      return;
    }
    auto join = Joiner::make(done);
    auto ino = alloc_inode(join);
    if (!ino.is_ok()) {
      join->begin()(ino.status());
      join->seal();
      return;
    }
    std::uint32_t new_ino = ino.value();
    ensure_block(inode_block(new_ino), [this, new_ino, type, resolved,
                                        join](Status s) {
      if (!s.is_ok()) {
        join->begin()(s);
        join->seal();
        return;
      }
      Inode inode;
      inode.type = type;
      inode.links = 1;
      put_inode(new_ino, inode, join);
      DirEntry entry;
      entry.inode = new_ino;
      entry.type = type;
      entry.name = resolved.leaf;
      dir_add_entry(resolved.parent, entry, join->begin());
      join->seal();
    });
  });
}

void SimExt::write_file(const std::string& path, std::uint64_t offset,
                        Bytes data, DoneCb done) {
  enqueue([this, path, offset, data = std::move(data)](DoneCb finish) mutable {
    do_write(path, offset, std::move(data), std::move(finish));
  }, std::move(done));
}

void SimExt::do_write(const std::string& path, std::uint64_t offset,
                      Bytes data, DoneCb done) {
  resolve(path, [this, offset, data = std::move(data),
                 done](Status status, Resolved resolved) mutable {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    if (resolved.inode == 0) {
      done(error(ErrorCode::kNotFound, "no such file"));
      return;
    }
    std::uint32_t ino = resolved.inode;
    ensure_block(inode_block(ino), [this, ino, offset,
                                    data = std::move(data),
                                    done](Status s) mutable {
      if (!s.is_ok()) {
        done(s);
        return;
      }
      auto inode = std::make_shared<Inode>(get_inode(ino));
      if (inode->type != InodeType::kFile) {
        done(error(ErrorCode::kInvalidArgument, "not a regular file"));
        return;
      }
      auto join = Joiner::make(done);
      auto payload = std::make_shared<Bytes>(std::move(data));
      std::uint64_t end = offset + payload->size();
      std::uint32_t first_block = static_cast<std::uint32_t>(offset / kBlockSize);
      std::uint32_t last_block =
          payload->empty() ? first_block
                           : static_cast<std::uint32_t>((end - 1) / kBlockSize);

      // Data bytes are staged during the mapping phase and issued only
      // after the inode (and any pointer blocks) have been written: a
      // block-level observer can then attribute every data write to its
      // file — the property StorM's semantics reconstruction depends on.
      auto staged = std::make_shared<
          std::vector<std::pair<std::uint64_t, Bytes>>>();
      auto step = std::make_shared<std::function<void(std::uint32_t)>>();
      *step = [this, ino, inode, offset, payload, end, first_block,
               last_block, join, staged, step](std::uint32_t index) {
        if (payload->empty() || index > last_block) {
          std::uint64_t old_size = inode->size;
          inode->size = std::max(old_size, end);
          put_inode(ino, *inode, join);
          // Merge contiguous staged writes into single device I/Os, as a
          // kernel block layer would merge bios.
          std::vector<std::pair<std::uint64_t, Bytes>> merged;
          for (auto& [lba, bytes] : *staged) {
            if (!merged.empty() &&
                merged.back().first + merged.back().second.size() / 512 ==
                    lba) {
              merged.back().second.insert(merged.back().second.end(),
                                          bytes.begin(), bytes.end());
            } else {
              merged.emplace_back(lba, std::move(bytes));
            }
          }
          // Issue data after the same-tick metadata flush (see
          // mark_dirty): the post below runs after the pending-meta posts
          // already scheduled by put_inode/alloc, keeping the
          // metadata-before-data device order reconstruction relies on.
          for (auto& [lba, bytes] : merged) {
            if (options_.writeback_delay == 0) {
              sim_.schedule_in(0, [this, lba = lba, bytes = std::move(bytes),
                         cb = join->begin()]() mutable {
                dev_.write(lba, std::move(bytes), std::move(cb));
              });
            } else {
              pending_data_.emplace_back(lba, std::move(bytes));
              if (!flush_scheduled_) {
                flush_scheduled_ = true;
                sim_.schedule_in(options_.writeback_delay, [this] {
                  flush_scheduled_ = false;
                  flush_dirty([](Status) {});
                });
              }
            }
          }
          join->seal();
          return;
        }
        std::uint64_t block_start =
            static_cast<std::uint64_t>(index) * kBlockSize;
        std::uint64_t copy_from = std::max<std::uint64_t>(offset, block_start);
        std::uint64_t copy_to = std::min<std::uint64_t>(end, block_start + kBlockSize);
        bool full_block = (copy_from == block_start) &&
                          (copy_to == block_start + kBlockSize);
        bool existed_before =
            block_start < inode->size;  // may contain old data

        map_block(*inode, index, /*allocate=*/true, join,
                  [this, inode, index, payload, offset, block_start,
                   copy_from, copy_to, full_block, existed_before, join,
                   staged, step](Status ms, std::uint32_t block) {
          if (!ms.is_ok()) {
            join->begin()(ms);
            join->seal();
            return;
          }
          auto issue_write = [block, staged](Bytes bytes) {
            staged->emplace_back(
                static_cast<std::uint64_t>(block) * kSectorsPerBlock,
                std::move(bytes));
          };
          auto slice = [payload, offset](std::uint64_t from,
                                         std::uint64_t to) {
            return std::span<const std::uint8_t>(
                payload->data() + (from - offset), to - from);
          };
          if (full_block) {
            Bytes bytes(slice(copy_from, copy_to).begin(),
                        slice(copy_from, copy_to).end());
            issue_write(std::move(bytes));
            (*step)(index + 1);
            return;
          }
          if (!existed_before) {
            Bytes bytes(kBlockSize, 0);
            auto src = slice(copy_from, copy_to);
            std::memcpy(bytes.data() + (copy_from - block_start), src.data(),
                        src.size());
            issue_write(std::move(bytes));
            (*step)(index + 1);
            return;
          }
          // Read-modify-write of an existing partial block.
          std::uint64_t lba =
              static_cast<std::uint64_t>(block) * kSectorsPerBlock;
          dev_.read(lba, kSectorsPerBlock,
                    [slice, copy_from, copy_to, block_start, issue_write,
                     step, index, join](Status rs, Bytes old) {
            if (!rs.is_ok()) {
              join->begin()(rs);
              join->seal();
              return;
            }
            auto src = slice(copy_from, copy_to);
            std::memcpy(old.data() + (copy_from - block_start), src.data(),
                        src.size());
            issue_write(std::move(old));
            (*step)(index + 1);
          });
        });
      };
      (*step)(first_block);
    });
  });
}

void SimExt::read_file(const std::string& path, std::uint64_t offset,
                       std::uint32_t length, ReadCb done) {
  enqueue([this, path, offset, length, done](DoneCb finish) {
    do_read(path, offset, length,
            [done, finish](Status status, Bytes data) {
              done(status, std::move(data));
              finish(status);
            });
  }, [](Status) {});
}

void SimExt::do_read(const std::string& path, std::uint64_t offset,
                     std::uint32_t length, ReadCb done) {
  resolve(path, [this, offset, length, done](Status status,
                                             Resolved resolved) {
    if (!status.is_ok()) {
      done(status, {});
      return;
    }
    if (resolved.inode == 0) {
      done(error(ErrorCode::kNotFound, "no such file"), {});
      return;
    }
    std::uint32_t ino = resolved.inode;
    ensure_block(inode_block(ino), [this, ino, offset, length,
                                    done](Status s) {
      if (!s.is_ok()) {
        done(s, {});
        return;
      }
      auto inode = std::make_shared<Inode>(get_inode(ino));
      if (inode->type != InodeType::kFile) {
        done(error(ErrorCode::kInvalidArgument, "not a regular file"), {});
        return;
      }
      if (offset >= inode->size) {
        done(Status::ok(), {});
        return;
      }
      std::uint64_t end =
          std::min<std::uint64_t>(inode->size, offset + length);
      auto result = std::make_shared<Bytes>();
      result->reserve(end - offset);
      std::uint32_t first_block = static_cast<std::uint32_t>(offset / kBlockSize);
      std::uint32_t last_block = static_cast<std::uint32_t>((end - 1) / kBlockSize);

      // Phase 1: map every affected file block (metadata only — the
      // pointer blocks are cached after the first touch).
      auto blocks = std::make_shared<std::vector<std::uint32_t>>();
      auto map_step = std::make_shared<std::function<void(std::uint32_t)>>();
      // Phase 2 (run after mapping): merge contiguous runs into large
      // device reads, as the kernel block layer merges bios.
      auto read_phase = [this, offset, end, first_block, last_block,
                         result, blocks, done] {
        struct Run {
          std::uint32_t first_index;
          std::uint32_t first_block;  // 0 = hole
          std::uint32_t count;
        };
        auto runs = std::make_shared<std::vector<Run>>();
        for (std::uint32_t i = 0; i < blocks->size(); ++i) {
          std::uint32_t block = (*blocks)[i];
          bool contiguous =
              !runs->empty() &&
              ((block == 0 && runs->back().first_block == 0) ||
               (block != 0 && runs->back().first_block != 0 &&
                runs->back().first_block + runs->back().count == block));
          if (contiguous) {
            ++runs->back().count;
          } else {
            runs->push_back(Run{first_block + i, block, 1});
          }
        }
        auto run_step = std::make_shared<std::function<void(std::size_t)>>();
        *run_step = [this, offset, end, result, runs, done,
                     run_step](std::size_t run_index) {
          if (run_index == runs->size()) {
            done(Status::ok(), std::move(*result));
            return;
          }
          const Run& run = (*runs)[run_index];
          std::uint64_t run_start =
              static_cast<std::uint64_t>(run.first_index) * kBlockSize;
          std::uint64_t from = std::max<std::uint64_t>(offset, run_start);
          std::uint64_t to = std::min<std::uint64_t>(
              end, run_start + static_cast<std::uint64_t>(run.count) *
                                   kBlockSize);
          if (run.first_block == 0) {  // hole
            result->insert(result->end(), to - from, 0);
            (*run_step)(run_index + 1);
            return;
          }
          std::uint64_t lba =
              static_cast<std::uint64_t>(run.first_block) * kSectorsPerBlock;
          dev_.read(lba, run.count * kSectorsPerBlock,
                    [from, to, run_start, result, done, run_step,
                     run_index](Status rs, Bytes data) {
            if (!rs.is_ok()) {
              done(rs, {});
              return;
            }
            result->insert(
                result->end(),
                data.begin() + static_cast<std::ptrdiff_t>(from - run_start),
                data.begin() + static_cast<std::ptrdiff_t>(to - run_start));
            (*run_step)(run_index + 1);
          });
        };
        (*run_step)(0);
      };
      *map_step = [this, inode, last_block, blocks, done, map_step,
                   read_phase, first_block](std::uint32_t index) {
        if (index > last_block) {
          read_phase();
          return;
        }
        map_block(*inode, index, /*allocate=*/false, nullptr,
                  [blocks, done, map_step, index](Status ms,
                                                  std::uint32_t block) {
          if (!ms.is_ok()) {
            done(ms, {});
            return;
          }
          blocks->push_back(block);
          (*map_step)(index + 1);
        });
      };
      (*map_step)(first_block);
    });
  });
}

void SimExt::unlink(const std::string& path, DoneCb done) {
  enqueue([this, path](DoneCb finish) {
    do_unlink(path, std::move(finish));
  }, std::move(done));
}

void SimExt::do_unlink(const std::string& path, DoneCb done) {
  resolve(path, [this, done](Status status, Resolved resolved) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    if (resolved.inode == 0 || resolved.parent == 0) {
      done(error(ErrorCode::kNotFound, "no such path"));
      return;
    }
    std::uint32_t ino = resolved.inode;
    ensure_block(inode_block(ino), [this, ino, resolved, done](Status s) {
      if (!s.is_ok()) {
        done(s);
        return;
      }
      Inode inode = get_inode(ino);
      auto finish_removal = [this, ino, resolved, inode, done](Status fs) {
        if (!fs.is_ok()) {
          done(fs);
          return;
        }
        auto join = Joiner::make(done);
        dir_remove_entry(resolved.parent, resolved.leaf, join->begin());
        free_inode(ino, join);
        Inode cleared;  // type kFree, all zero
        put_inode(ino, cleared, join);
        join->seal();
      };
      if (inode.type == InodeType::kDirectory) {
        // Directories must be empty (we reuse dir_scan over all entries).
        std::vector<std::uint32_t> blocks;
        for (std::uint32_t block : inode.direct) {
          if (block != 0) blocks.push_back(block);
        }
        ensure_blocks(blocks, [this, blocks, inode, finish_removal,
                               done](Status es) {
          if (!es.is_ok()) {
            done(es);
            return;
          }
          for (std::uint32_t block : blocks) {
            const Bytes& data = cached(block);
            for (std::uint32_t slot = 0; slot < kDirEntriesPerBlock; ++slot) {
              DirEntry entry = DirEntry::parse(std::span<const std::uint8_t>(
                  data.data() + slot * kDirEntrySize, kDirEntrySize));
              if (entry.inode != 0) {
                done(error(ErrorCode::kFailedPrecondition,
                           "directory not empty"));
                return;
              }
            }
          }
          auto join2 = Joiner::make([finish_removal](Status js) {
            finish_removal(js);
          });
          for (std::uint32_t block : blocks) free_block(block, join2);
          join2->seal();
        });
        return;
      }
      auto join = Joiner::make([finish_removal](Status js) {
        finish_removal(js);
      });
      free_file_blocks(inode, join, join->begin());
      join->seal();
    });
  });
}

void SimExt::rename(const std::string& from, const std::string& to,
                    DoneCb done) {
  enqueue([this, from, to](DoneCb finish) {
    do_rename(from, to, std::move(finish));
  }, std::move(done));
}

void SimExt::do_rename(const std::string& from, const std::string& to,
                       DoneCb done) {
  resolve(from, [this, to, done](Status status, Resolved src) {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    if (src.inode == 0 || src.parent == 0) {
      done(error(ErrorCode::kNotFound, "rename source missing"));
      return;
    }
    resolve(to, [this, src, done](Status s2, Resolved dst) {
      if (!s2.is_ok()) {
        done(s2);
        return;
      }
      if (dst.inode != 0 || dst.parent == 0) {
        done(error(ErrorCode::kAlreadyExists, "rename target exists"));
        return;
      }
      ensure_block(inode_block(src.inode), [this, src, dst,
                                            done](Status s3) {
        if (!s3.is_ok()) {
          done(s3);
          return;
        }
        Inode inode = get_inode(src.inode);
        dir_remove_entry(src.parent, src.leaf,
                         [this, src, dst, inode, done](Status s4) {
          if (!s4.is_ok()) {
            done(s4);
            return;
          }
          DirEntry entry;
          entry.inode = src.inode;
          entry.type = inode.type;
          entry.name = dst.leaf;
          dir_add_entry(dst.parent, entry, done);
        });
      });
    });
  });
}

void SimExt::readdir(const std::string& path, ListCb done) {
  enqueue([this, path, done](DoneCb finish) {
    auto fail = [done, finish](Status status) {
      done(status, {});
      finish(status);
    };
    resolve(path, [this, done, finish, fail](Status status,
                                             Resolved resolved) {
      if (!status.is_ok()) {
        fail(status);
        return;
      }
      if (resolved.inode == 0) {
        fail(error(ErrorCode::kNotFound, "no such directory"));
        return;
      }
      ensure_block(inode_block(resolved.inode),
                   [this, resolved, done, finish, fail](Status s) {
        if (!s.is_ok()) {
          fail(s);
          return;
        }
        Inode dir = get_inode(resolved.inode);
        if (dir.type != InodeType::kDirectory) {
          fail(error(ErrorCode::kInvalidArgument, "not a directory"));
          return;
        }
        std::vector<std::uint32_t> blocks;
        for (std::uint32_t block : dir.direct) {
          if (block != 0) blocks.push_back(block);
        }
        ensure_blocks(blocks, [this, blocks, done, finish,
                               fail](Status es) {
          if (!es.is_ok()) {
            fail(es);
            return;
          }
          std::vector<DirEntry> entries;
          for (std::uint32_t block : blocks) {
            const Bytes& data = cached(block);
            for (std::uint32_t slot = 0; slot < kDirEntriesPerBlock;
                 ++slot) {
              DirEntry entry = DirEntry::parse(std::span<const std::uint8_t>(
                  data.data() + slot * kDirEntrySize, kDirEntrySize));
              if (entry.inode != 0) entries.push_back(std::move(entry));
            }
          }
          done(Status::ok(), std::move(entries));
          finish(Status::ok());
        });
      });
    });
  }, [](Status) {});
}

void SimExt::stat(const std::string& path, StatCb done) {
  enqueue([this, path, done](DoneCb finish) {
    resolve(path, [this, done, finish](Status status, Resolved resolved) {
      if (!status.is_ok()) {
        done(status, {});
        finish(status);
        return;
      }
      if (resolved.inode == 0) {
        Status nf = error(ErrorCode::kNotFound, "no such path");
        done(nf, {});
        finish(nf);
        return;
      }
      ensure_block(inode_block(resolved.inode),
                   [this, resolved, done, finish](Status s) {
        if (!s.is_ok()) {
          done(s, {});
          finish(s);
          return;
        }
        Inode inode = get_inode(resolved.inode);
        StatInfo info;
        info.type = inode.type;
        info.size = inode.size;
        info.inode = resolved.inode;
        done(Status::ok(), info);
        finish(Status::ok());
      });
    });
  }, [](Status) {});
}

}  // namespace storm::fs
