// SimExt: an ext2-style filesystem over a BlockDevice.
//
// Public operations are asynchronous (they generate real block I/O over
// the possibly-spliced storage path) and internally serialized, like a
// VFS holding a per-mount lock. Metadata blocks (bitmaps, inode tables,
// directory blocks) are cached on first touch; file data is never cached,
// so every file read/write reaches the device — which is what storage
// middle-boxes observe.
//
// An optional writeback delay models the guest page cache: metadata and
// data writes are deferred, so the block-level write sequence trails the
// file-op sequence (the effect the paper points out under Table I).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "block/block_device.hpp"
#include "fs/layout.hpp"
#include "sim/simulator.hpp"

namespace storm::fs {

struct StatInfo {
  InodeType type = InodeType::kFree;
  std::uint64_t size = 0;
  std::uint32_t inode = 0;
};

struct SimExtOptions {
  /// 0 = write-through; otherwise writes are buffered and flushed after
  /// this delay (or at flush()).
  sim::Duration writeback_delay = 0;
};

class SimExt {
 public:
  using Options = SimExtOptions;

  using DoneCb = std::function<void(Status)>;
  using ReadCb = std::function<void(Status, Bytes)>;
  using ListCb = std::function<void(Status, std::vector<DirEntry>)>;
  using StatCb = std::function<void(Status, StatInfo)>;

  SimExt(sim::Executor executor, block::BlockDevice& device,
         Options options = {});

  SimExt(const SimExt&) = delete;
  SimExt& operator=(const SimExt&) = delete;

  /// Format a device (synchronous, direct store access — formatting
  /// happens before the volume is attached to any data path).
  static Status mkfs(block::MemDisk& disk);

  /// Read the superblock and prefetch allocation bitmaps.
  void mount(DoneCb done);
  bool mounted() const { return mounted_; }
  const SuperBlock& superblock() const { return sb_; }

  // All paths are absolute, '/'-separated.
  void create(const std::string& path, DoneCb done);
  void mkdir(const std::string& path, DoneCb done);
  void write_file(const std::string& path, std::uint64_t offset, Bytes data,
                  DoneCb done);
  void read_file(const std::string& path, std::uint64_t offset,
                 std::uint32_t length, ReadCb done);
  void unlink(const std::string& path, DoneCb done);
  void rename(const std::string& from, const std::string& to, DoneCb done);
  void readdir(const std::string& path, ListCb done);
  void stat(const std::string& path, StatCb done);

  /// Write out all buffered dirty blocks; completes when they are on the
  /// device.
  void flush(DoneCb done);

  /// Drop clean cached metadata (cold-cache behavior for experiments).
  void drop_caches();

  std::uint32_t free_data_blocks() const;

 private:
  struct Joiner;

  // --- op queue (VFS lock) ---
  void enqueue(std::function<void(DoneCb)> op, DoneCb user_done);
  void run_next();

  // --- metadata cache ---
  void ensure_block(std::uint32_t block, DoneCb done);
  void ensure_blocks(std::vector<std::uint32_t> blocks, DoneCb done);
  Bytes& cached(std::uint32_t block);
  void mark_dirty(std::uint32_t block, const std::shared_ptr<Joiner>& join);
  void flush_dirty(DoneCb done);

  // --- inode helpers (blocks must be ensured first) ---
  Inode get_inode(std::uint32_t ino);
  void put_inode(std::uint32_t ino, const Inode& inode,
                 const std::shared_ptr<Joiner>& join);
  std::uint32_t inode_block(std::uint32_t ino) const;

  // --- allocation (bitmaps are always cached after mount) ---
  Result<std::uint32_t> alloc_inode(const std::shared_ptr<Joiner>& join);
  Result<std::uint32_t> alloc_block(const std::shared_ptr<Joiner>& join);
  void free_inode(std::uint32_t ino, const std::shared_ptr<Joiner>& join);
  void free_block(std::uint32_t block, const std::shared_ptr<Joiner>& join);

  // --- path resolution ---
  struct Resolved {
    std::uint32_t parent = 0;       // parent directory inode
    std::uint32_t inode = 0;        // 0 when the leaf does not exist
    std::string leaf;
  };
  using ResolveCb = std::function<void(Status, Resolved)>;
  void resolve(const std::string& path, ResolveCb done);
  void resolve_step(std::shared_ptr<std::vector<std::string>> parts,
                    std::size_t index, std::uint32_t current, ResolveCb done);
  /// Scan `dir` for `name`; requires dir data blocks ensured. Returns slot
  /// position via out-params.
  void dir_scan(const Inode& dir, const std::string& name,
                std::function<void(Status, std::uint32_t /*ino*/,
                                   std::uint32_t /*block*/,
                                   std::uint32_t /*slot_off*/)> done);
  void dir_add_entry(std::uint32_t dir_ino, const DirEntry& entry,
                     DoneCb done);
  void dir_remove_entry(std::uint32_t dir_ino, const std::string& name,
                        DoneCb done);

  // --- file block mapping ---
  /// Absolute block number for file-block `index` (0 when unmapped and
  /// !allocate). With allocate, extends the mapping, updating `inode`
  /// in place (caller persists it).
  void map_block(Inode& inode, std::uint32_t index, bool allocate,
                 std::shared_ptr<Joiner> join,
                 std::function<void(Status, std::uint32_t)> done);
  void free_file_blocks(const Inode& inode, std::shared_ptr<Joiner> join,
                        DoneCb done);

  // --- op bodies ---
  void do_create(const std::string& path, InodeType type, DoneCb done);
  void do_write(const std::string& path, std::uint64_t offset, Bytes data,
                DoneCb done);
  void do_read(const std::string& path, std::uint64_t offset,
               std::uint32_t length, ReadCb done);
  void do_unlink(const std::string& path, DoneCb done);
  void do_rename(const std::string& from, const std::string& to, DoneCb done);

  sim::Executor sim_;
  block::BlockDevice& dev_;
  Options options_;
  bool mounted_ = false;
  SuperBlock sb_;

  std::map<std::uint32_t, Bytes> cache_;
  std::set<std::uint32_t> dirty_;
  /// Write-through metadata writes coalesced within one event tick:
  /// block -> completion callbacks of the operations awaiting it.
  std::map<std::uint32_t, std::vector<std::function<void(Status)>>>
      pending_meta_;
  /// Deferred file-data writes (writeback mode only).
  std::vector<std::pair<std::uint64_t, Bytes>> pending_data_;
  bool flush_scheduled_ = false;

  std::deque<std::pair<std::function<void(DoneCb)>, DoneCb>> op_queue_;
  bool op_running_ = false;
};

/// Split an absolute path into components; rejects empty names and
/// non-absolute paths.
Result<std::vector<std::string>> split_path(const std::string& path);

}  // namespace storm::fs
