// SimExt on-disk layout: an honest ext2-style subset.
//
//   block 0:                superblock
//   per group g (starting at block 1 + g*blocks_per_group):
//     +0                    block bitmap (1 block)
//     +1                    inode bitmap (1 block)
//     +2 .. +2+T-1          inode table (T = inodes_per_group*128/4096)
//     rest                  data blocks
//
// The layout codec is shared between the filesystem implementation and
// StorM's semantics-reconstruction engine: the engine classifies raw
// block numbers and parses inode/directory blocks straight off the wire,
// exactly as the paper's middle-box does for Ext4.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace storm::fs {

inline constexpr std::uint32_t kBlockSize = 4096;
inline constexpr std::uint32_t kSectorsPerBlock = kBlockSize / 512;
inline constexpr std::uint32_t kMagic = 0x51E2F500;  // "SimExt"
inline constexpr std::uint32_t kInodeSize = 128;
inline constexpr std::uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
inline constexpr std::uint32_t kDirEntrySize = 64;
inline constexpr std::uint32_t kMaxNameLen = kDirEntrySize - 6 - 1;
inline constexpr std::uint32_t kDirEntriesPerBlock = kBlockSize / kDirEntrySize;
inline constexpr std::uint32_t kDirectBlocks = 12;
inline constexpr std::uint32_t kPointersPerBlock = kBlockSize / 4;
inline constexpr std::uint32_t kRootInode = 1;  // inode 0 reserved/invalid

struct SuperBlock {
  std::uint32_t magic = kMagic;
  std::uint32_t total_blocks = 0;
  std::uint32_t blocks_per_group = 8192;   // incl. the group's metadata
  std::uint32_t inodes_per_group = 2048;
  std::uint32_t num_groups = 0;

  std::uint32_t inode_table_blocks() const {
    return inodes_per_group / kInodesPerBlock;
  }
  std::uint32_t group_meta_blocks() const { return 2 + inode_table_blocks(); }
  std::uint32_t group_first_block(std::uint32_t group) const {
    return 1 + group * blocks_per_group;
  }
  std::uint32_t data_blocks_per_group() const {
    return blocks_per_group - group_meta_blocks();
  }
  std::uint32_t total_inodes() const { return num_groups * inodes_per_group; }

  Bytes serialize() const;
  static Result<SuperBlock> parse(std::span<const std::uint8_t> block);
};

enum class InodeType : std::uint16_t {
  kFree = 0,
  kFile = 1,
  kDirectory = 2,
};

struct Inode {
  InodeType type = InodeType::kFree;
  std::uint16_t links = 0;
  std::uint64_t size = 0;
  std::array<std::uint32_t, kDirectBlocks> direct{};
  std::uint32_t indirect = 0;
  std::uint32_t dindirect = 0;

  bool in_use() const { return type != InodeType::kFree; }

  /// Serialize into a 128-byte slot.
  void serialize_into(std::span<std::uint8_t> slot) const;
  static Inode parse(std::span<const std::uint8_t> slot);
};

struct DirEntry {
  std::uint32_t inode = 0;  // 0 = empty slot
  InodeType type = InodeType::kFree;
  std::string name;

  void serialize_into(std::span<std::uint8_t> slot) const;
  static DirEntry parse(std::span<const std::uint8_t> slot);
};

/// What a raw block number means, per the superblock geometry.
struct BlockClass {
  enum class Kind {
    kSuperblock,
    kBlockBitmap,
    kInodeBitmap,
    kInodeTable,
    kData,
    kOutOfRange,
  };
  Kind kind = Kind::kData;
  std::uint32_t group = 0;
  std::uint32_t table_index = 0;  // block index within the inode table

  std::string to_string() const;
};

BlockClass classify_block(const SuperBlock& sb, std::uint32_t block);

/// Inode-number geometry helpers.
std::uint32_t inode_group(const SuperBlock& sb, std::uint32_t ino);
/// Absolute block number holding `ino`, plus the byte offset inside it.
std::pair<std::uint32_t, std::uint32_t> inode_location(const SuperBlock& sb,
                                                       std::uint32_t ino);
/// First inode number stored in inode-table block (`group`, `table_index`).
std::uint32_t first_inode_of_table_block(const SuperBlock& sb,
                                         std::uint32_t group,
                                         std::uint32_t table_index);

/// Bitmap helpers operating on a raw 4096-byte bitmap block.
bool bitmap_get(std::span<const std::uint8_t> bitmap, std::uint32_t index);
void bitmap_set(std::span<std::uint8_t> bitmap, std::uint32_t index,
                bool value);
/// First clear bit in [0, limit), or nullopt.
std::optional<std::uint32_t> bitmap_find_clear(
    std::span<const std::uint8_t> bitmap, std::uint32_t limit);

}  // namespace storm::fs
