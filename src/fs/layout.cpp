#include "fs/layout.hpp"

#include <cstring>
#include <sstream>

namespace storm::fs {

Bytes SuperBlock::serialize() const {
  Bytes block(kBlockSize, 0);
  ByteWriter w(block);
  block.clear();
  w.u32(magic);
  w.u32(total_blocks);
  w.u32(blocks_per_group);
  w.u32(inodes_per_group);
  w.u32(num_groups);
  block.resize(kBlockSize, 0);
  return block;
}

Result<SuperBlock> SuperBlock::parse(std::span<const std::uint8_t> block) {
  try {
    ByteReader r(block);
    SuperBlock sb;
    sb.magic = r.u32();
    if (sb.magic != kMagic) {
      return error(ErrorCode::kParseError, "bad SimExt magic");
    }
    sb.total_blocks = r.u32();
    sb.blocks_per_group = r.u32();
    sb.inodes_per_group = r.u32();
    sb.num_groups = r.u32();
    if (sb.blocks_per_group == 0 || sb.inodes_per_group == 0 ||
        sb.inodes_per_group % kInodesPerBlock != 0 ||
        sb.blocks_per_group <= sb.group_meta_blocks()) {
      return error(ErrorCode::kParseError, "inconsistent SimExt geometry");
    }
    return sb;
  } catch (const std::out_of_range&) {
    return error(ErrorCode::kParseError, "truncated superblock");
  }
}

void Inode::serialize_into(std::span<std::uint8_t> slot) const {
  if (slot.size() < kInodeSize) throw std::invalid_argument("inode slot");
  std::memset(slot.data(), 0, kInodeSize);
  Bytes tmp;
  ByteWriter w(tmp);
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(links);
  w.u64(size);
  for (std::uint32_t block : direct) w.u32(block);
  w.u32(indirect);
  w.u32(dindirect);
  std::memcpy(slot.data(), tmp.data(), tmp.size());
}

Inode Inode::parse(std::span<const std::uint8_t> slot) {
  ByteReader r(slot);
  Inode inode;
  inode.type = static_cast<InodeType>(r.u16());
  inode.links = r.u16();
  inode.size = r.u64();
  for (auto& block : inode.direct) block = r.u32();
  inode.indirect = r.u32();
  inode.dindirect = r.u32();
  return inode;
}

void DirEntry::serialize_into(std::span<std::uint8_t> slot) const {
  if (slot.size() < kDirEntrySize) throw std::invalid_argument("dirent slot");
  if (name.size() > kMaxNameLen) throw std::invalid_argument("name too long");
  std::memset(slot.data(), 0, kDirEntrySize);
  Bytes tmp;
  ByteWriter w(tmp);
  w.u32(inode);
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint16_t>(type)));
  w.u8(static_cast<std::uint8_t>(name.size()));
  w.raw(name.data(), name.size());
  std::memcpy(slot.data(), tmp.data(), tmp.size());
}

DirEntry DirEntry::parse(std::span<const std::uint8_t> slot) {
  ByteReader r(slot);
  DirEntry entry;
  entry.inode = r.u32();
  entry.type = static_cast<InodeType>(r.u8());
  std::uint8_t name_len = r.u8();
  Bytes name = r.raw(std::min<std::size_t>(name_len, kMaxNameLen));
  entry.name.assign(name.begin(), name.end());
  return entry;
}

BlockClass classify_block(const SuperBlock& sb, std::uint32_t block) {
  BlockClass result;
  if (block >= sb.total_blocks) {
    result.kind = BlockClass::Kind::kOutOfRange;
    return result;
  }
  if (block == 0) {
    result.kind = BlockClass::Kind::kSuperblock;
    return result;
  }
  std::uint32_t rel = block - 1;
  result.group = rel / sb.blocks_per_group;
  std::uint32_t offset = rel % sb.blocks_per_group;
  if (result.group >= sb.num_groups) {
    result.kind = BlockClass::Kind::kOutOfRange;
    return result;
  }
  if (offset == 0) {
    result.kind = BlockClass::Kind::kBlockBitmap;
  } else if (offset == 1) {
    result.kind = BlockClass::Kind::kInodeBitmap;
  } else if (offset < sb.group_meta_blocks()) {
    result.kind = BlockClass::Kind::kInodeTable;
    result.table_index = offset - 2;
  } else {
    result.kind = BlockClass::Kind::kData;
  }
  return result;
}

std::string BlockClass::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kSuperblock: out << "superblock"; break;
    case Kind::kBlockBitmap: out << "block_bitmap_" << group; break;
    case Kind::kInodeBitmap: out << "inode_bitmap_" << group; break;
    case Kind::kInodeTable: out << "inode_group_" << group; break;
    case Kind::kData: out << "data"; break;
    case Kind::kOutOfRange: out << "out_of_range"; break;
  }
  return out.str();
}

std::uint32_t inode_group(const SuperBlock& sb, std::uint32_t ino) {
  return ino / sb.inodes_per_group;
}

std::pair<std::uint32_t, std::uint32_t> inode_location(const SuperBlock& sb,
                                                       std::uint32_t ino) {
  std::uint32_t group = inode_group(sb, ino);
  std::uint32_t index = ino % sb.inodes_per_group;
  std::uint32_t block = sb.group_first_block(group) + 2 +
                        index / kInodesPerBlock;
  std::uint32_t offset = (index % kInodesPerBlock) * kInodeSize;
  return {block, offset};
}

std::uint32_t first_inode_of_table_block(const SuperBlock& sb,
                                         std::uint32_t group,
                                         std::uint32_t table_index) {
  return group * sb.inodes_per_group + table_index * kInodesPerBlock;
}

bool bitmap_get(std::span<const std::uint8_t> bitmap, std::uint32_t index) {
  return (bitmap[index / 8] >> (index % 8)) & 1;
}

void bitmap_set(std::span<std::uint8_t> bitmap, std::uint32_t index,
                bool value) {
  if (value) {
    bitmap[index / 8] |= static_cast<std::uint8_t>(1u << (index % 8));
  } else {
    bitmap[index / 8] &= static_cast<std::uint8_t>(~(1u << (index % 8)));
  }
}

std::optional<std::uint32_t> bitmap_find_clear(
    std::span<const std::uint8_t> bitmap, std::uint32_t limit) {
  for (std::uint32_t i = 0; i < limit; ++i) {
    if (!bitmap_get(bitmap, i)) return i;
  }
  return std::nullopt;
}

}  // namespace storm::fs
