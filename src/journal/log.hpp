// Log-structured journal engine: the (simulated) NVRAM backend behind
// the active relay's early-ACK consistency guarantee, rebuilt from the
// per-burst store into a real storage engine (ROADMAP item 3; cortx-motr
// be/ is the structural exemplar).
//
//   * Append-only segmented log. Records from many streams (one stream
//     per chain/session direction) multiplex into one shared Device —
//     thousands of chains share one journal device instead of each
//     keeping a private buffer.
//   * CRC-framed records (segment.hpp): replay walks the byte image and
//     accepts exactly the fully-stored prefix; a torn or bit-flipped
//     frame ends the log. This is what makes power-failure recovery a
//     byte-exact, testable operation (tests/journal_testutil.hpp sweeps
//     kills across every record boundary and mid-record).
//   * Group commit: appends store their bytes into NVRAM immediately
//     (byte-addressable persistence — the store itself is power-fail
//     safe, which is what lets the relay early-ACK without waiting), but
//     the device write pipeline that makes commit *latency* visible
//     drains them in batches: one simulated NVRAM write (fixed latency +
//     per-byte cost) covers every record staged while the previous write
//     was in flight, amortizing the per-write latency that a
//     one-write-per-burst journal pays on every PDU.
//   * Checkpoint + segment truncation (checkpoint.hpp): ack-driven trims
//     move in-memory cursors; a checkpoint record makes the horizon
//     durable and lets whole dead segments be dropped — space reclaim is
//     segment-granular, not per-ack.
//
// Durability invariant (what is durable when the early ACK fires): a
// record is in NVRAM the moment append() returns; a crash preserves
// every fully-appended record and at most one torn frame, which replay
// detects and discards. Records trimmed after the last checkpoint may be
// resurrected by replay (at-least-once above the checkpoint horizon);
// that is safe because streams replay burst-atomically onto idempotent
// sector writes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/buf.hpp"
#include "journal/checkpoint.hpp"
#include "journal/segment.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::journal {

struct Config {
  /// Segment capacity; the log rolls to a fresh segment when the active
  /// one cannot fit the next record (oversize records get a segment of
  /// their own).
  std::size_t segment_bytes = 256 * 1024;
  /// Fixed cost of one simulated NVRAM write (the flush/fence the device
  /// charges per write, independent of size) ...
  sim::Duration write_latency = sim::microseconds(4);
  /// ... plus this much per byte written (device bandwidth).
  double ns_per_byte = 0.25;
  /// Batch all records staged during the in-flight write into the next
  /// write (group commit). false = one NVRAM write per record, the
  /// per-burst baseline the bench compares against.
  bool group_commit = true;
  /// Auto-checkpoint once this many dead (trimmed) frame bytes have
  /// accumulated since the last checkpoint; 0 = explicit checkpoints
  /// only. Checkpoints are also when dead whole segments are reclaimed.
  std::size_t checkpoint_dead_bytes = 128 * 1024;
};

/// The journal device: one per (simulated) NVRAM DIMM — for the active
/// relay, one per middle-box VM, shared by every session and direction.
class Device {
 public:
  using CommitFn = std::function<void()>;

  struct ReplayStats {
    std::size_t recovered = 0;  // live records rebuilt into streams
    std::size_t skipped = 0;    // below the checkpoint horizon
    std::size_t torn = 0;       // invalid frames that ended the scan
    bool clean() const { return torn == 0; }
  };

  /// A deep copy of the device's NVRAM contents — what survives a power
  /// failure, exportable for the crash-point harness and fuzzers.
  struct Image {
    std::vector<Bytes> segments;
    std::size_t bytes() const {
      std::size_t total = 0;
      for (const Bytes& s : segments) total += s.size();
      return total;
    }
  };

  Device(sim::Executor executor, obs::Scope scope, Config config = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // --- streams (per-chain multiplexing) ---
  StreamId open_stream();
  /// Drop every live record of `stream` (session reset / teardown). The
  /// drop joins the checkpoint horizon so replay does not resurrect the
  /// dead stream.
  void drop_stream(StreamId stream);

  /// Append one record. The payload is stored into the active segment
  /// (the NVRAM copy — charged to the copy ledger) and indexed; the
  /// record is power-fail safe when this returns. `on_commit` fires when
  /// the device write pipeline has drained it (group commit latency).
  /// Returns the record's device-wide sequence number.
  std::uint64_t append(StreamId stream, const BufChain& payload,
                       std::uint64_t watermark, bool boundary,
                       CommitFn on_commit = {});

  /// Burst-atomic logical trim: drop `stream`'s acknowledged prefix up
  /// to the furthest burst boundary at or below `acked_watermark` —
  /// never splitting a burst, never touching the torn trailing burst.
  void trim(StreamId stream, std::uint64_t acked_watermark);

  /// Write a checkpoint record (durable trim horizon) and reclaim dead
  /// whole segments from the front of the log.
  void checkpoint();

  // --- per-stream accessors (null-safe: unknown stream reads as empty) ---
  std::vector<BufChain> stream_records(StreamId stream) const;
  std::size_t stream_entries(StreamId stream) const;
  std::size_t stream_bytes(StreamId stream) const;
  std::size_t stream_torn_tail_bytes(StreamId stream) const;
  std::size_t stream_complete_bytes(StreamId stream) const {
    return stream_bytes(stream) - stream_torn_tail_bytes(stream);
  }

  // --- device totals ---
  std::size_t live_bytes() const;    // payload bytes across live records
  std::size_t device_bytes() const;  // physical bytes held in segments
  std::size_t segment_count() const { return segments_.size(); }
  std::uint64_t appended_seq() const { return next_seq_ - 1; }
  std::uint64_t committed_seq() const { return committed_seq_; }
  /// No append is waiting on the write pipeline.
  bool flush_idle() const { return !flush_in_flight_ && pending_.empty(); }
  std::uint64_t checkpoints_written() const { return checkpoints_; }
  const Config& config() const { return config_; }

  // --- crash / recovery ---
  Image export_image() const;
  /// Power failure: volatile state (stream index, staged commit
  /// callbacks, in-flight write) is gone; segment bytes survive.
  void crash();
  /// Rebuild the stream index by scanning the segments: accept the valid
  /// CRC-framed prefix, apply the latest checkpoint horizon, truncate
  /// the torn tail. Emits replay_* telemetry.
  ReplayStats recover();
  /// Adopt a (possibly truncated/corrupted) NVRAM image and recover from
  /// it — the crash-point harness entry point.
  ReplayStats load(Image image);

 private:
  struct LiveRecord {
    std::uint64_t seq = 0;
    std::uint64_t watermark = 0;
    bool boundary = true;
    std::uint32_t segment_id = 0;
    std::size_t bytes = 0;  // payload bytes
    BufChain payload;       // refcounted; after recovery, segment copies
  };
  struct StreamState {
    std::deque<LiveRecord> records;
    std::size_t bytes = 0;
    std::size_t torn_tail_bytes = 0;
    std::uint64_t trim_cursor = 0;  // highest trimmed boundary watermark
    std::uint64_t last_seq = 0;
  };
  struct SegmentState {
    Segment segment;
    std::size_t live = 0;  // live records (stream + latest checkpoint)
    std::uint64_t min_seq = UINT64_MAX;
    std::uint64_t max_seq = 0;
  };
  struct PendingCommit {
    std::uint64_t seq = 0;
    sim::Time appended = 0;
    std::size_t frame_bytes = 0;
    CommitFn on_commit;
  };

  SegmentState& active_segment(std::size_t payload_len);
  void note_append(SegmentState& seg, std::uint64_t seq);
  void stage_commit(std::uint64_t seq, std::size_t frame_bytes, CommitFn cb);
  void schedule_flush();
  void complete_flush(std::size_t batch_records);
  void segment_release(std::uint32_t segment_id);
  void maybe_auto_checkpoint();
  void reclaim_segments();
  void update_gauges();
  Checkpoint horizon() const;

  sim::Executor sim_;
  obs::Scope scope_;
  Config config_;

  std::deque<SegmentState> segments_;
  std::map<StreamId, StreamState> streams_;
  /// Streams dropped whole, with the last seq they wrote (for pruning
  /// once no surviving segment can still hold their records).
  std::map<StreamId, std::uint64_t> dropped_streams_;

  std::uint32_t next_segment_id_ = 0;
  StreamId next_stream_ = 1;  // 0 is the meta stream
  std::uint64_t next_seq_ = 1;
  std::uint64_t committed_seq_ = 0;
  std::uint64_t epoch_ = 0;  // bumped by crash(); stale flushes no-op
  bool flush_in_flight_ = false;
  sim::CancelToken flush_token_;
  std::deque<PendingCommit> pending_;
  std::size_t dead_bytes_ = 0;  // trimmed frame bytes since last checkpoint
  bool has_checkpoint_segment_ = false;
  std::uint32_t checkpoint_segment_ = 0;  // holds the latest checkpoint
  std::uint64_t checkpoints_ = 0;
};

/// Per-chain handle over a shared Device — the drop-in replacement for
/// the old per-session RelayJournal. Default-constructed handles are
/// null (every accessor reads as empty) so holders can embed one
/// unconditionally and bind it when the device is known.
class Stream {
 public:
  Stream() = default;
  explicit Stream(Device& device)
      : device_(&device), id_(device.open_stream()) {}

  void append(BufChain wire, std::uint64_t watermark, bool boundary = true,
              Device::CommitFn on_commit = {}) {
    if (device_ != nullptr) {
      device_->append(id_, wire, watermark, boundary, std::move(on_commit));
    }
  }
  void trim(std::uint64_t acked_watermark) {
    if (device_ != nullptr) device_->trim(id_, acked_watermark);
  }
  std::vector<BufChain> unacknowledged() const {
    return device_ != nullptr ? device_->stream_records(id_)
                              : std::vector<BufChain>{};
  }
  std::size_t entries() const {
    return device_ != nullptr ? device_->stream_entries(id_) : 0;
  }
  std::size_t bytes() const {
    return device_ != nullptr ? device_->stream_bytes(id_) : 0;
  }
  std::size_t torn_tail_bytes() const {
    return device_ != nullptr ? device_->stream_torn_tail_bytes(id_) : 0;
  }
  std::size_t complete_bytes() const {
    return device_ != nullptr ? device_->stream_complete_bytes(id_) : 0;
  }

  /// Session reset: drop the old stream's records and continue as a
  /// fresh stream on the same device.
  void reset() {
    if (device_ != nullptr) {
      device_->drop_stream(id_);
      id_ = device_->open_stream();
    }
  }

  StreamId id() const { return id_; }
  Device* device() const { return device_; }

 private:
  Device* device_ = nullptr;
  StreamId id_ = 0;
};

}  // namespace storm::journal
