// Checkpoint records: the durable trim horizon of the journal.
//
// Ack-driven trims only move in-memory cursors; what makes a trim stick
// across a power failure is the checkpoint record — a meta-stream record
// whose payload is the cursor table (stream id -> highest trimmed burst
// watermark) plus the set of streams that were dropped outright. On
// replay, the latest checkpoint in the valid prefix is applied: records
// at or below their stream's cursor (or belonging to a dropped stream)
// are skipped as already-acknowledged. Records trimmed *after* the last
// checkpoint may therefore be resurrected by a crash — that is the
// documented at-least-once window, and it is safe because journaled
// bursts replay burst-atomically onto idempotent sector writes.
//
// Checkpoints are also the space-reclaim trigger: once a checkpoint
// record has made the horizon durable, whole segments below it can be
// dropped (see Device::checkpoint), replacing byte-level ack-trim with
// segment truncation.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>

#include "common/bytes.hpp"
#include "journal/segment.hpp"

namespace storm::journal {

struct Checkpoint {
  /// Highest trimmed (acknowledged) burst-boundary watermark per stream.
  std::map<StreamId, std::uint64_t> cursors;
  /// Streams dropped whole (session resets): every record is dead
  /// regardless of watermark.
  std::set<StreamId> dropped;

  /// True if `stream`'s record at `watermark` is at or below the horizon.
  bool covers(StreamId stream, std::uint64_t watermark) const {
    if (dropped.count(stream) != 0) return true;
    auto it = cursors.find(stream);
    return it != cursors.end() && watermark <= it->second;
  }
};

/// Payload codec for checkpoint records (big-endian, like every wire
/// format in the repo).
Bytes encode_checkpoint(const Checkpoint& checkpoint);

/// Decode a checkpoint payload. Malformed payloads (possible only via
/// image corruption that still passed CRC — i.e. never in practice, but
/// the fuzzer insists) yield an empty checkpoint.
Checkpoint decode_checkpoint(std::span<const std::uint8_t> payload);

}  // namespace storm::journal
