#include "journal/log.hpp"

#include <algorithm>

namespace storm::journal {

Device::Device(sim::Executor executor, obs::Scope scope, Config config)
    : sim_(executor), scope_(std::move(scope)), config_(config) {
  if (config_.segment_bytes < kRecordOverhead + 1) {
    config_.segment_bytes = kRecordOverhead + 1;
  }
}

Device::~Device() { flush_token_.cancel(); }

// ------------------------------------------------------------- streams

StreamId Device::open_stream() {
  const StreamId id = next_stream_++;
  streams_.emplace(id, StreamState{});
  return id;
}

void Device::drop_stream(StreamId stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  StreamState& st = it->second;
  for (const LiveRecord& record : st.records) {
    segment_release(record.segment_id);
    dead_bytes_ += frame_size(record.bytes);
  }
  if (st.last_seq != 0) dropped_streams_[stream] = st.last_seq;
  streams_.erase(it);
  maybe_auto_checkpoint();
  update_gauges();
}

// ------------------------------------------------------------- append

Device::SegmentState& Device::active_segment(std::size_t payload_len) {
  if (segments_.empty() || !segments_.back().segment.fits(payload_len)) {
    if (!segments_.empty()) scope_.counter("segments_sealed").add();
    const std::size_t capacity =
        std::max(config_.segment_bytes, frame_size(payload_len));
    segments_.push_back(
        SegmentState{Segment(next_segment_id_++, capacity), 0});
    scope_.counter("segments_opened").add();
  }
  return segments_.back();
}

void Device::note_append(SegmentState& seg, std::uint64_t seq) {
  ++seg.live;
  seg.min_seq = std::min(seg.min_seq, seq);
  seg.max_seq = std::max(seg.max_seq, seq);
}

void Device::stage_commit(std::uint64_t seq, std::size_t frame_bytes,
                          CommitFn cb) {
  pending_.push_back(PendingCommit{seq, sim_.now(), frame_bytes,
                                   std::move(cb)});
  schedule_flush();
}

std::uint64_t Device::append(StreamId stream, const BufChain& payload,
                             std::uint64_t watermark, bool boundary,
                             CommitFn on_commit) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    // Adopted stream id (standby handoff, post-recovery append): learn it.
    it = streams_.emplace(stream, StreamState{}).first;
    next_stream_ = std::max(next_stream_, stream + 1);
  }
  StreamState& st = it->second;

  const std::size_t len = chain_size(payload);
  SegmentState& seg = active_segment(len);
  const std::uint64_t seq = next_seq_++;
  const std::uint8_t flags = boundary ? kBoundary : 0;
  const std::size_t frame =
      seg.segment.append(stream, seq, watermark, flags, payload);
  note_append(seg, seq);

  st.records.push_back(LiveRecord{seq, watermark, boundary,
                                  seg.segment.id(), len, payload});
  st.bytes += len;
  st.torn_tail_bytes = boundary ? 0 : st.torn_tail_bytes + len;
  st.last_seq = seq;

  scope_.counter("appends").add();
  scope_.counter("append_bytes").add(len);
  stage_commit(seq, frame, std::move(on_commit));
  update_gauges();
  return seq;
}

// --------------------------------------------------------- group commit

void Device::schedule_flush() {
  if (flush_in_flight_ || pending_.empty()) return;
  // Group commit: one simulated NVRAM write covers everything staged so
  // far; records arriving while it is in flight form the next group.
  // Baseline (group_commit=false): one write per record, serialized.
  const std::size_t batch =
      config_.group_commit ? pending_.size() : std::size_t{1};
  std::size_t batch_bytes = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    batch_bytes += pending_[i].frame_bytes;
  }
  flush_in_flight_ = true;
  const sim::Duration cost =
      config_.write_latency +
      static_cast<sim::Duration>(config_.ns_per_byte *
                                 static_cast<double>(batch_bytes));
  const std::uint64_t epoch = epoch_;
  flush_token_ = sim_.schedule_in(cost, [this, epoch, batch] {
    if (epoch_ != epoch) return;  // a crash invalidated this write
    complete_flush(batch);
  });
}

void Device::complete_flush(std::size_t batch_records) {
  flush_in_flight_ = false;
  const sim::Time now = sim_.now();
  std::size_t batch_bytes = 0;
  std::vector<CommitFn> callbacks;
  callbacks.reserve(batch_records);
  for (std::size_t i = 0; i < batch_records && !pending_.empty(); ++i) {
    PendingCommit& entry = pending_.front();
    committed_seq_ = entry.seq;
    batch_bytes += entry.frame_bytes;
    scope_.histogram("commit_latency_ns")
        .record(static_cast<std::int64_t>(now - entry.appended));
    if (entry.on_commit) callbacks.push_back(std::move(entry.on_commit));
    pending_.pop_front();
  }
  scope_.counter("commits").add();
  scope_.counter("committed_records").add(batch_records);
  scope_.counter("committed_bytes").add(batch_bytes);
  scope_.histogram("group_records")
      .record(static_cast<std::int64_t>(batch_records));
  scope_.histogram("group_bytes").record(static_cast<std::int64_t>(batch_bytes));
  // Callbacks run after the bookkeeping: one may append again (and the
  // next flush must see a consistent pipeline).
  for (CommitFn& cb : callbacks) cb();
  schedule_flush();
}

// ----------------------------------------------------------------- trim

void Device::trim(StreamId stream, std::uint64_t acked_watermark) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  StreamState& st = it->second;
  // Furthest acknowledged burst boundary; drop the whole prefix up to it
  // (never leaving a torn burst at the stream head).
  std::size_t drop = 0;
  for (std::size_t i = 0; i < st.records.size(); ++i) {
    if (st.records[i].watermark > acked_watermark) break;
    if (st.records[i].boundary) drop = i + 1;
  }
  if (drop == 0) return;
  for (std::size_t i = 0; i < drop; ++i) {
    LiveRecord& record = st.records.front();
    st.bytes -= record.bytes;
    st.trim_cursor = std::max(st.trim_cursor, record.watermark);
    segment_release(record.segment_id);
    dead_bytes_ += frame_size(record.bytes);
    st.records.pop_front();
  }
  maybe_auto_checkpoint();
  update_gauges();
}

void Device::segment_release(std::uint32_t segment_id) {
  for (SegmentState& seg : segments_) {
    if (seg.segment.id() == segment_id) {
      if (seg.live > 0) --seg.live;
      return;
    }
  }
}

// ----------------------------------------------------------- checkpoint

Checkpoint Device::horizon() const {
  Checkpoint cp;
  for (const auto& [id, st] : streams_) {
    if (st.trim_cursor > 0) cp.cursors[id] = st.trim_cursor;
  }
  for (const auto& [id, last_seq] : dropped_streams_) {
    (void)last_seq;
    cp.dropped.insert(id);
  }
  return cp;
}

void Device::checkpoint() {
  const Bytes payload = encode_checkpoint(horizon());
  SegmentState& seg = active_segment(payload.size());
  const std::uint64_t seq = next_seq_++;
  const std::size_t frame = seg.segment.append(
      kMetaStream, seq, 0, kCheckpoint,
      std::span<const std::uint8_t>(payload));
  note_append(seg, seq);
  // Only the latest checkpoint is live; the one it supersedes becomes
  // dead weight in its segment.
  if (has_checkpoint_segment_) segment_release(checkpoint_segment_);
  has_checkpoint_segment_ = true;
  checkpoint_segment_ = seg.segment.id();
  stage_commit(seq, frame, {});
  ++checkpoints_;
  scope_.counter("checkpoints").add();
  dead_bytes_ = 0;
  reclaim_segments();
  update_gauges();
}

void Device::maybe_auto_checkpoint() {
  if (config_.checkpoint_dead_bytes > 0 &&
      dead_bytes_ >= config_.checkpoint_dead_bytes) {
    checkpoint();
  }
}

void Device::reclaim_segments() {
  // Space reclaim is segment-granular and front-only (the log is a
  // queue): drop whole dead segments, never carve bytes out of one.
  while (segments_.size() > 1 && segments_.front().live == 0) {
    segments_.pop_front();
    scope_.counter("segments_reclaimed").add();
  }
  // Streams dropped long ago whose records cannot survive in any
  // remaining segment no longer need a tombstone in the horizon.
  if (!segments_.empty()) {
    const std::uint64_t floor_seq = segments_.front().min_seq;
    for (auto it = dropped_streams_.begin(); it != dropped_streams_.end();) {
      it = it->second < floor_seq ? dropped_streams_.erase(it) : std::next(it);
    }
  }
}

// ------------------------------------------------------------ accessors

std::vector<BufChain> Device::stream_records(StreamId stream) const {
  std::vector<BufChain> out;
  auto it = streams_.find(stream);
  if (it == streams_.end()) return out;
  out.reserve(it->second.records.size());
  for (const LiveRecord& record : it->second.records) {
    out.push_back(record.payload);
  }
  return out;
}

std::size_t Device::stream_entries(StreamId stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.records.size();
}

std::size_t Device::stream_bytes(StreamId stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.bytes;
}

std::size_t Device::stream_torn_tail_bytes(StreamId stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.torn_tail_bytes;
}

std::size_t Device::live_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, st] : streams_) total += st.bytes;
  return total;
}

std::size_t Device::device_bytes() const {
  std::size_t total = 0;
  for (const SegmentState& seg : segments_) total += seg.segment.size();
  return total;
}

void Device::update_gauges() {
  scope_.gauge("device_bytes").set(static_cast<std::int64_t>(device_bytes()));
  scope_.gauge("segments").set(static_cast<std::int64_t>(segments_.size()));
}

// -------------------------------------------------------- crash/recover

Device::Image Device::export_image() const {
  Image image;
  image.segments.reserve(segments_.size());
  for (const SegmentState& seg : segments_) {
    auto bytes = seg.segment.bytes();
    image.segments.emplace_back(bytes.begin(), bytes.end());
  }
  return image;
}

void Device::crash() {
  ++epoch_;  // in-flight NVRAM writes die with the power
  flush_token_.cancel();
  flush_in_flight_ = false;
  pending_.clear();
  streams_.clear();
  dropped_streams_.clear();
  for (SegmentState& seg : segments_) {
    seg.live = 0;
    seg.min_seq = UINT64_MAX;
    seg.max_seq = 0;
  }
  has_checkpoint_segment_ = false;
  dead_bytes_ = 0;
  scope_.counter("crashes").add();
}

Device::ReplayStats Device::load(Image image) {
  crash();
  segments_.clear();
  next_segment_id_ = 0;
  for (Bytes& bytes : image.segments) {
    segments_.push_back(
        SegmentState{Segment(next_segment_id_++, std::move(bytes)), 0});
  }
  return recover();
}

Device::ReplayStats Device::recover() {
  ReplayStats stats;
  // Idempotent: reset every piece of volatile state up front, so recover()
  // can run more than once over the same NVRAM (a standby exports the dead
  // box's journal, then the box itself restarts and replays it again).
  flush_token_.cancel();
  flush_in_flight_ = false;
  pending_.clear();
  for (SegmentState& seg : segments_) {
    seg.live = 0;
    seg.min_seq = UINT64_MAX;
    seg.max_seq = 0;
  }
  has_checkpoint_segment_ = false;
  dead_bytes_ = 0;
  // Pass 1: walk the segments in log order, collecting the valid record
  // prefix. The first invalid frame — torn write, bit flip, truncated
  // image — ends the log: everything after it is discarded (prefix
  // semantics), and the torn segment is truncated so appends continue
  // from the last valid frame.
  struct Scanned {
    std::size_t segment_index;
    RecordView view;
  };
  std::vector<Scanned> valid;
  std::size_t end = segments_.size();
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    ScanResult scan = segments_[i].segment.scan();
    for (const RecordView& view : scan.records) {
      valid.push_back(Scanned{i, view});
    }
    if (scan.torn) {
      ++stats.torn;
      segments_[i].segment.truncate(scan.valid_bytes);
      end = i + 1;
      break;
    }
    if (scan.valid_bytes < segments_[i].segment.size()) {
      // Clean end mid-segment: nothing after it can be log data.
      segments_[i].segment.truncate(scan.valid_bytes);
      end = i + 1;
      break;
    }
  }
  while (segments_.size() > end) segments_.pop_back();

  // Pass 2: the latest checkpoint in the prefix is the durable horizon.
  Checkpoint horizon;
  std::uint64_t horizon_seq = 0;
  for (const Scanned& rec : valid) {
    if (rec.view.stream == kMetaStream && rec.view.checkpoint()) {
      horizon = decode_checkpoint(rec.view.payload);
      horizon_seq = rec.view.seq;
    }
  }

  // Pass 3: rebuild the stream index from the surviving records.
  streams_.clear();
  dropped_streams_.clear();
  std::uint64_t max_seq = 0;
  StreamId max_stream = 0;
  for (const Scanned& rec : valid) {
    const RecordView& view = rec.view;
    max_seq = std::max(max_seq, view.seq);
    SegmentState& seg = segments_[rec.segment_index];
    if (view.stream == kMetaStream) {
      if (view.checkpoint() && view.seq == horizon_seq) {
        // Only the latest checkpoint stays live in its segment.
        note_append(seg, view.seq);
        has_checkpoint_segment_ = true;
        checkpoint_segment_ = seg.segment.id();
      }
      continue;
    }
    max_stream = std::max(max_stream, view.stream);
    if (horizon.covers(view.stream, view.watermark)) {
      ++stats.skipped;
      continue;
    }
    StreamState& st = streams_[view.stream];
    st.records.push_back(LiveRecord{
        view.seq, view.watermark, view.boundary(), seg.segment.id(),
        view.payload.size(), BufChain{Buf::copy(view.payload)}});
    st.bytes += view.payload.size();
    st.torn_tail_bytes =
        view.boundary() ? 0 : st.torn_tail_bytes + view.payload.size();
    st.last_seq = view.seq;
    auto cursor = horizon.cursors.find(view.stream);
    if (cursor != horizon.cursors.end()) st.trim_cursor = cursor->second;
    note_append(seg, view.seq);
    ++stats.recovered;
  }
  for (StreamId id : horizon.dropped) {
    // Tombstones persist until no surviving segment can hold the
    // stream's records; conservatively pin them to the newest seq.
    dropped_streams_[id] = max_seq;
    max_stream = std::max(max_stream, id);
  }
  for (const auto& [id, cursor] : horizon.cursors) {
    (void)cursor;
    max_stream = std::max(max_stream, id);
  }

  next_seq_ = std::max(next_seq_, max_seq + 1);
  next_stream_ = std::max(next_stream_, max_stream + 1);
  // Everything that survived in NVRAM is durable by definition.
  committed_seq_ = next_seq_ - 1;
  reclaim_segments();

  scope_.counter("replays").add();
  scope_.counter("replay_records_recovered").add(stats.recovered);
  scope_.counter("replay_records_skipped").add(stats.skipped);
  scope_.counter("replay_torn_records").add(stats.torn);
  update_gauges();
  return stats;
}

}  // namespace storm::journal
