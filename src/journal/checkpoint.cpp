#include "journal/checkpoint.hpp"

#include <stdexcept>

namespace storm::journal {

Bytes encode_checkpoint(const Checkpoint& checkpoint) {
  Bytes out;
  ByteWriter writer(out);
  writer.u32(static_cast<std::uint32_t>(checkpoint.cursors.size()));
  for (const auto& [stream, cursor] : checkpoint.cursors) {
    writer.u32(stream);
    writer.u64(cursor);
  }
  writer.u32(static_cast<std::uint32_t>(checkpoint.dropped.size()));
  for (StreamId stream : checkpoint.dropped) writer.u32(stream);
  return out;
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> payload) {
  Checkpoint checkpoint;
  try {
    ByteReader reader(payload);
    const std::uint32_t cursors = reader.u32();
    for (std::uint32_t i = 0; i < cursors; ++i) {
      const StreamId stream = reader.u32();
      checkpoint.cursors[stream] = reader.u64();
    }
    const std::uint32_t dropped = reader.u32();
    for (std::uint32_t i = 0; i < dropped; ++i) {
      checkpoint.dropped.insert(reader.u32());
    }
  } catch (const std::out_of_range&) {
    return Checkpoint{};
  }
  return checkpoint;
}

}  // namespace storm::journal
