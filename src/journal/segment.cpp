#include "journal/segment.hpp"

#include "common/hash.hpp"

namespace storm::journal {

ScanResult scan_image(std::span<const std::uint8_t> image) {
  ScanResult result;
  std::size_t off = 0;
  while (off < image.size()) {
    const std::size_t left = image.size() - off;
    if (left < kRecordHeaderBytes) {
      // Not even a header fits. A run of zero bytes is the unwritten
      // region of the device (clean end); anything else is a torn frame.
      for (std::size_t i = off; i < image.size(); ++i) {
        if (image[i] != 0) {
          result.torn = true;
          break;
        }
      }
      break;
    }
    ByteReader reader(image.subspan(off));
    const std::uint32_t magic = reader.u32();
    if (magic != kRecordMagic) {
      if (magic == 0) break;  // unwritten tail
      result.torn = true;
      break;
    }
    const StreamId stream = reader.u32();
    const std::uint64_t seq = reader.u64();
    const std::uint64_t watermark = reader.u64();
    const std::uint8_t flags = reader.u8();
    const std::uint32_t len = reader.u32();
    if (frame_size(len) > left) {  // frame runs past the image: torn
      result.torn = true;
      break;
    }
    const std::span<const std::uint8_t> frame = image.subspan(off, frame_size(len));
    const std::span<const std::uint8_t> payload =
        frame.subspan(kRecordHeaderBytes, len);
    const std::uint32_t stored_crc =
        (static_cast<std::uint32_t>(frame[kRecordHeaderBytes + len]) << 24) |
        (static_cast<std::uint32_t>(frame[kRecordHeaderBytes + len + 1]) << 16) |
        (static_cast<std::uint32_t>(frame[kRecordHeaderBytes + len + 2]) << 8) |
        static_cast<std::uint32_t>(frame[kRecordHeaderBytes + len + 3]);
    if (crc32(frame.first(kRecordHeaderBytes + len)) != stored_crc) {
      result.torn = true;
      break;
    }
    RecordView view;
    view.stream = stream;
    view.seq = seq;
    view.watermark = watermark;
    view.flags = flags;
    view.payload = payload;
    view.offset = off;
    view.frame_bytes = frame.size();
    result.records.push_back(view);
    off += frame.size();
    result.valid_bytes = off;
  }
  return result;
}

std::size_t Segment::append(StreamId stream, std::uint64_t seq,
                            std::uint64_t watermark, std::uint8_t flags,
                            std::span<const std::uint8_t> payload) {
  const std::size_t start = data_.size();
  ByteWriter writer(data_);
  writer.u32(kRecordMagic);
  writer.u32(stream);
  writer.u64(seq);
  writer.u64(watermark);
  writer.u8(flags);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.raw(payload);
  writer.u32(crc32(std::span<const std::uint8_t>(data_).subspan(start)));
  return data_.size() - start;
}

std::size_t Segment::append(StreamId stream, std::uint64_t seq,
                            std::uint64_t watermark, std::uint8_t flags,
                            const BufChain& payload) {
  const std::size_t start = data_.size();
  ByteWriter writer(data_);
  writer.u32(kRecordMagic);
  writer.u32(stream);
  writer.u64(seq);
  writer.u64(watermark);
  writer.u8(flags);
  writer.u32(static_cast<std::uint32_t>(chain_size(payload)));
  for (const Buf& chunk : payload) writer.raw(chunk.span());
  writer.u32(crc32(std::span<const std::uint8_t>(data_).subspan(start)));
  return data_.size() - start;
}

void Segment::truncate(std::size_t valid_bytes) {
  if (valid_bytes < data_.size()) data_.resize(valid_bytes);
}

}  // namespace storm::journal
