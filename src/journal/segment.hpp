// One segment of the append-only journal log: a contiguous region of
// (simulated) NVRAM holding CRC-framed records. The record frame is what
// makes crash recovery work — every record carries its own length and a
// CRC32 over header + payload, so a replay scan can walk an arbitrary
// byte image, accept exactly the records that were fully stored, and
// stop at the first torn or corrupted frame (torn-write detection).
//
// Frame layout (big-endian, matching the repo's wire codecs):
//
//   offset size  field
//   0      4     magic 0x4A524E4C ("JRNL")
//   4      4     stream id (0 is reserved for checkpoint/meta records)
//   8      8     seq — device-wide monotonic record sequence number
//   16     8     watermark — stream-level cumulative byte watermark
//   24     1     flags (kBoundary | kCheckpoint)
//   25     4     payload length
//   29     len   payload bytes
//   29+len 4     CRC32 over bytes [0, 29+len)
//
// A record is valid iff the whole frame fits in the image, the magic
// matches, the length is sane and the trailing CRC verifies. The scan is
// prefix semantics: the first invalid frame ends the segment's valid
// region — append-only logs never have valid data after a torn write.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/buf.hpp"
#include "common/bytes.hpp"

namespace storm::journal {

using StreamId = std::uint32_t;

/// Stream 0 never carries tenant payload: it is the meta stream that
/// checkpoint records are written to.
inline constexpr StreamId kMetaStream = 0;

inline constexpr std::uint32_t kRecordMagic = 0x4A524E4C;  // "JRNL"
inline constexpr std::size_t kRecordHeaderBytes = 29;
inline constexpr std::size_t kRecordTrailerBytes = 4;  // CRC32
inline constexpr std::size_t kRecordOverhead =
    kRecordHeaderBytes + kRecordTrailerBytes;

enum RecordFlags : std::uint8_t {
  kBoundary = 0x01,    // record closes a burst: safe replay point
  kCheckpoint = 0x02,  // payload is a checkpoint cursor table
};

/// One decoded record, viewing (not owning) the segment image it was
/// scanned out of.
struct RecordView {
  StreamId stream = 0;
  std::uint64_t seq = 0;
  std::uint64_t watermark = 0;
  std::uint8_t flags = 0;
  std::span<const std::uint8_t> payload;
  std::size_t offset = 0;  // frame start within the scanned image
  std::size_t frame_bytes = 0;

  bool boundary() const { return flags & kBoundary; }
  bool checkpoint() const { return flags & kCheckpoint; }
};

/// Result of walking an image: the valid record prefix, where it ends,
/// and whether the walk stopped on a torn/corrupt frame (vs the clean
/// end of the written region).
struct ScanResult {
  std::vector<RecordView> records;
  std::size_t valid_bytes = 0;  // image prefix covered by valid frames
  bool torn = false;            // stopped on an invalid frame
};

/// Frame size for a payload of `len` bytes.
constexpr std::size_t frame_size(std::size_t len) {
  return kRecordOverhead + len;
}

/// Walk `image` from offset 0, decoding frames until the first invalid
/// one. Safe on arbitrary (fuzzed, truncated, bit-flipped) bytes: every
/// read is bounds-checked and every accepted record passed its CRC.
ScanResult scan_image(std::span<const std::uint8_t> image);

class Segment {
 public:
  explicit Segment(std::uint32_t id, std::size_t capacity)
      : id_(id), capacity_(capacity) {
    data_.reserve(capacity);
  }

  /// Adopt an existing image (crash-recovery path). The segment's write
  /// offset is wherever the image ends.
  Segment(std::uint32_t id, Bytes image)
      : id_(id), capacity_(image.size()), data_(std::move(image)) {}

  std::uint32_t id() const { return id_; }
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool fits(std::size_t payload_len) const {
    return data_.size() + frame_size(payload_len) <= capacity_;
  }

  /// Append one framed record; returns the frame's byte count. The
  /// caller (the log) guarantees fits() or accepts growth past capacity
  /// for oversize records.
  std::size_t append(StreamId stream, std::uint64_t seq,
                     std::uint64_t watermark, std::uint8_t flags,
                     std::span<const std::uint8_t> payload);

  /// Chunked-payload variant: gathers the chain straight into the
  /// segment image (one copy — the NVRAM store) without flattening it
  /// into a temporary first.
  std::size_t append(StreamId stream, std::uint64_t seq,
                     std::uint64_t watermark, std::uint8_t flags,
                     const BufChain& payload);

  /// Drop everything after `valid_bytes` (recovery truncates the torn
  /// tail so new appends continue from the last valid frame).
  void truncate(std::size_t valid_bytes);

  std::span<const std::uint8_t> bytes() const { return data_; }
  ScanResult scan() const { return scan_image(data_); }

 private:
  std::uint32_t id_;
  std::size_t capacity_;
  Bytes data_;
};

}  // namespace storm::journal
