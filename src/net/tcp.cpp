#include "net/tcp.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"

namespace storm::net {

// ---------------------------------------------------------------- TcpStack

void TcpStack::ensure_telemetry() {
  if (telemetry_ready_) return;
  telemetry_ready_ = true;
  obs::Registry& reg = node_.executor().telemetry();
  tel_segments_tx_ = &reg.counter("tcp.segments_tx");
  tel_segments_rx_ = &reg.counter("tcp.segments_rx");
  tel_checksum_drops_ = &reg.counter("tcp.checksum_drops");
  tel_retransmits_ = &reg.counter("tcp.retransmits");
  tel_fast_retransmits_ = &reg.counter("tcp.fast_retransmits");
  tel_rto_fired_ = &reg.counter("tcp.rto_fired");
  tel_window_stalls_ = &reg.counter("tcp.window_stalls");
  tel_zero_window_probes_ = &reg.counter("tcp.zero_window_probes");
  tel_window_overrun_drops_ = &reg.counter("tcp.window_overrun_drops");
  tel_rtt_ = &reg.histogram("tcp.rtt_ns");
}

void TcpStack::note_window_stall() {
  ++window_stalls_;
  ensure_telemetry();
  tel_window_stalls_->add();
}

void TcpStack::note_zero_window_probe() {
  ensure_telemetry();
  tel_zero_window_probes_->add();
}

void TcpStack::note_window_overrun(std::size_t bytes) {
  window_overrun_drops_ += bytes;
  ensure_telemetry();
  tel_window_overrun_drops_->add(static_cast<std::int64_t>(bytes));
}

void TcpStack::listen(std::uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpConnection& TcpStack::connect(
    SocketAddr remote, TcpConnection::EstablishedCallback on_established,
    std::uint16_t local_port) {
  if (local_port == 0) local_port = allocate_ephemeral_port();
  last_connect_port_ = local_port;

  // Local IP: the NIC that routes toward the destination (standard source
  // address selection). NAT may rewrite the flow on the way out, but the
  // socket is keyed by its pre-NAT tuple, as on a real host.
  SocketAddr local{node_.source_ip_for(remote.ip), local_port};
  auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
      *this, local, remote, /*initiator=*/true, default_window_));
  conn->on_established_ = std::move(on_established);
  TcpConnection& ref = *conn;
  connections_[FourTuple{local, remote}] = std::move(conn);

  ref.send_syn();
  ref.arm_rto();
  return ref;
}

void TcpStack::handle_segment(Packet pkt) {
  ensure_telemetry();
  tel_segments_rx_->add();
  // Corrupted in flight? Discard before any state can be touched — a
  // flipped bit must never tear down a connection (e.g. by forging RST).
  if (pkt.tcp.checksum != tcp_checksum(pkt)) {
    ++checksum_drops_;
    tel_checksum_drops_->add();
    log_debug("tcp") << "checksum mismatch, dropping " << pkt.summary();
    return;
  }

  const FourTuple key{{pkt.ip.dst, pkt.tcp.dst_port},
                      {pkt.ip.src, pkt.tcp.src_port}};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    TcpConnection& existing = *it->second;
    const bool fresh_syn =
        (pkt.tcp.flags & kTcpSyn) && !(pkt.tcp.flags & kTcpAck);
    // A retransmitted or duplicated copy of the SYN that created the
    // current incarnation: let the connection handle (ignore/re-ACK) it.
    const bool dup_of_current =
        fresh_syn && existing.state() != TcpConnection::State::kClosed &&
        pkt.tcp.seq + 1 == existing.rcv_nxt_;
    if (!fresh_syn || dup_of_current) {
      existing.handle_segment(pkt);
      return;
    }
    // A genuinely new SYN re-using the 4-tuple supersedes the old
    // connection: port reuse after RST, or a peer that crashed without
    // saying goodbye and is now re-dialing (the active relay's recovery
    // path does both). The close callback may touch this stack, so
    // re-look-up by key before erasing.
    if (existing.state() != TcpConnection::State::kClosed) {
      existing.enter_closed(error(ErrorCode::kConnectionFailed,
                                  "superseded by new connection"));
    }
    connections_.erase(key);
  }
  auto lit = listeners_.end();
  if ((pkt.tcp.flags & kTcpSyn) && !(pkt.tcp.flags & kTcpAck)) {
    lit = listeners_.find(pkt.tcp.dst_port);
  }
  if (lit != listeners_.end()) {
    auto conn = std::unique_ptr<TcpConnection>(
        new TcpConnection(*this, key.src, key.dst, /*initiator=*/false,
                          default_window_));
    TcpConnection& ref = *conn;
    ref.peer_window_ = pkt.tcp.window;
    ref.rcv_nxt_ = pkt.tcp.seq + 1;  // consume the SYN
    connections_[key] = std::move(conn);

    ref.accept_pending_ = lit->second;
    ref.send_synack();
    ref.arm_rto();
    return;
  }
  // Segment for an unknown connection: answer with RST (unless it is one).
  if (!(pkt.tcp.flags & kTcpRst)) {
    Packet rst;
    rst.ip.src = pkt.ip.dst;
    rst.ip.dst = pkt.ip.src;
    rst.tcp.src_port = pkt.tcp.dst_port;
    rst.tcp.dst_port = pkt.tcp.src_port;
    rst.tcp.flags = kTcpRst;
    transmit(std::move(rst));
  }
}

void TcpStack::reset() {
  // Destructors cancel pending retransmission timers; no callbacks fire.
  connections_.clear();
  listeners_.clear();
}

void TcpStack::transmit(Packet pkt) {
  ensure_telemetry();
  tel_segments_tx_->add();
  pkt.tcp.checksum = tcp_checksum(pkt);
  node_.send_ip(std::move(pkt));
}

// ----------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(TcpStack& stack, SocketAddr local,
                             SocketAddr remote, bool initiator,
                             std::uint32_t window)
    : stack_(stack), local_(local), remote_(remote),
      state_(initiator ? State::kSynSent : State::kSynReceived),
      send_window_cap_(window), peer_window_(window), recv_window_(window) {}

void TcpConnection::send(Buf data) {
  if (state_ == State::kClosed || fin_pending_) return;
  if (!data.empty()) {
    send_size_ += data.size();
    send_chunks_.push_back(std::move(data));
  }
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::send(BufChain chunks) {
  if (state_ == State::kClosed || fin_pending_) return;
  for (Buf& chunk : chunks) {
    if (chunk.empty()) continue;
    send_size_ += chunk.size();
    send_chunks_.push_back(std::move(chunk));
  }
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::set_on_data(DataCallback cb) {
  on_data_ = std::move(cb);
  if (!pending_rx_.empty() && on_data_) {
    std::vector<Buf> buffered;
    buffered.swap(pending_rx_);
    for (Buf& chunk : buffered) {
      const std::size_t n = chunk.size();
      on_data_(std::move(chunk));
      // Without credit-based delivery the handoff itself frees the
      // buffer — and may reopen a window pending_rx_ had closed.
      if (!credit_based_) consume(n);
    }
  }
}

void TcpConnection::consume(std::size_t bytes) {
  rcv_buffered_ -= std::min(bytes, rcv_buffered_);
  if (state_ == State::kClosed) return;
  // Reopening a window that was advertised closed: push the update —
  // the sender may be idle in persist with nothing in flight to clock
  // an ACK back to us.
  if (advertised_closed_ && advertised_window() > 0) send_ack();
}

void TcpConnection::close() {
  if (state_ == State::kClosed || fin_pending_) return;
  fin_pending_ = true;
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  emit(kTcpRst, {}, snd_nxt_);
  enter_closed(error(ErrorCode::kConnectionFailed, "local abort"));
}

void TcpConnection::emit(std::uint8_t flags, Buf payload,
                         std::uint64_t seq) {
  Packet pkt;
  pkt.ip.src = local_.ip;
  pkt.ip.dst = remote_.ip;
  pkt.tcp.src_port = local_.port;
  pkt.tcp.dst_port = remote_.port;
  pkt.tcp.flags = flags;
  pkt.tcp.seq = seq;
  pkt.tcp.ack = rcv_nxt_;
  const std::uint32_t window = advertised_window();
  pkt.tcp.window = window;
  pkt.payload = std::move(payload);
  // Every segment ACKs rcv_nxt_, so it (re)advertises the right edge
  // rcv_nxt_ + window; remember the furthest edge ever granted — that,
  // not the instantaneous window, is what receive() may accept up to.
  if (rcv_nxt_ + window > rcv_window_edge_) {
    rcv_window_edge_ = rcv_nxt_ + window;
  }
  advertised_closed_ = window == 0;
  stack_.transmit(std::move(pkt));
}

void TcpConnection::send_ack() { emit(kTcpAck, {}, snd_nxt_); }

Buf TcpConnection::slice_send(std::size_t offset, std::size_t len) const {
  std::size_t skip = chunk_head_ + offset;
  std::size_t i = 0;
  while (skip >= send_chunks_[i].size()) {
    skip -= send_chunks_[i].size();
    ++i;
  }
  const Buf& first = send_chunks_[i];
  if (first.size() - skip >= len) {
    // Common case: the whole segment lies inside one chunk — a refcounted
    // view, no bytes move (retransmits re-slice the same storage).
    return first.slice(skip, len);
  }
  // Segment straddles a chunk boundary: gather into fresh storage.
  Bytes out;
  out.reserve(len);
  std::size_t need = len;
  for (std::size_t off = skip; need > 0; ++i, off = 0) {
    const Buf& chunk = send_chunks_[i];
    const std::size_t take = std::min(need, chunk.size() - off);
    out.insert(out.end(), chunk.begin() + off, chunk.begin() + off + take);
    need -= take;
  }
  bufstats::add_bytes_copied(len);
  return Buf(std::move(out));
}

void TcpConnection::pump() {
  if (state_ != State::kEstablished && state_ != State::kFinSent) return;
  const std::uint32_t window = std::min(send_window_cap_, peer_window_);
  while (true) {
    const std::uint64_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= window) break;
    if (in_flight >= send_size_) break;  // nothing unsent
    const std::size_t offset = static_cast<std::size_t>(in_flight);
    const std::size_t len =
        std::min({kTcpMss, send_size_ - offset,
                  static_cast<std::size_t>(window - in_flight)});
    if (len == 0) break;
    emit(kTcpAck, slice_send(offset, len), snd_nxt_);
    snd_nxt_ += len;
    if (snd_nxt_ > max_seq_sent_) {
      // Count only never-before-sent bytes; retransmissions don't inflate
      // the throughput accounting.
      bytes_sent_ += snd_nxt_ - std::max(max_seq_sent_, snd_nxt_ - len);
      max_seq_sent_ = snd_nxt_;
      // Karn RTT probe: one fresh-data segment timed at a time; the
      // sample completes when the cumulative ACK covers its end.
      if (!rtt_probe_armed_) {
        rtt_probe_armed_ = true;
        rtt_probe_seq_ = snd_nxt_;
        rtt_probe_sent_ = stack_.node().executor().now();
      }
    }
    arm_rto();
  }
  if (fin_pending_ && !fin_sent_ && send_size_ == 0 &&
      snd_una_ == snd_nxt_) {
    emit(kTcpFin | kTcpAck, {}, snd_nxt_);
    snd_nxt_ += 1;  // FIN consumes a sequence number
    fin_sent_ = true;
    state_ = State::kFinSent;
    arm_rto();
  }
  maybe_arm_persist();
}

void TcpConnection::maybe_arm_persist() {
  // Persist applies only when the peer's window is shut with data still
  // queued and nothing in flight: no outstanding segment means no ACK
  // will ever come back to re-open us, so a timer has to.
  const bool blocked = state_ == State::kEstablished && send_size_ > 0 &&
                       snd_una_ == snd_nxt_ &&
                       std::min(send_window_cap_, peer_window_) == 0;
  if (!blocked) {
    persist_token_.cancel();
    persist_backoff_ = kTcpInitialRto;
    window_stalled_ = false;
    return;
  }
  if (!window_stalled_) {
    window_stalled_ = true;
    stack_.note_window_stall();
  }
  if (!persist_token_.armed()) {
    persist_token_ = stack_.node().executor().schedule_in(
        persist_backoff_, [this] { on_persist(); });
  }
}

void TcpConnection::on_persist() {
  persist_token_.cancel();  // the fired token would otherwise read as armed
  if (state_ != State::kEstablished) return;
  if (send_size_ == 0 || snd_una_ != snd_nxt_ ||
      std::min(send_window_cap_, peer_window_) != 0) {
    pump();  // window opened while the timer was pending
    return;
  }
  // One-byte window probe into the closed window. The receiver trims it
  // at its window edge and answers with a duplicate ACK carrying the
  // current window; if the window reopened and the update ACK was lost,
  // the probe's byte is accepted and the cumulative ACK reopens us.
  // Either way progress resumes — probes are never counted as retries,
  // so a flow-controlled peer can stall us indefinitely without the
  // connection being declared dead.
  ++zero_window_probes_;
  stack_.note_zero_window_probe();
  emit(kTcpAck, slice_send(0, 1), snd_nxt_);
  persist_backoff_ =
      std::min<sim::Duration>(persist_backoff_ * 2, kTcpMaxRto);
  persist_token_ = stack_.node().executor().schedule_in(
      persist_backoff_, [this] { on_persist(); });
}

void TcpConnection::arm_rto() {
  if (rto_token_.armed()) return;
  rto_token_ = stack_.node().executor().schedule_in(
      rto_, [this] { on_rto(); });
}

void TcpConnection::restart_rto() {
  cancel_rto();
  arm_rto();
}

void TcpConnection::on_rto() {
  rto_token_.cancel();  // the fired token would otherwise read as armed
  if (state_ == State::kClosed) return;
  const bool outstanding = snd_nxt_ > snd_una_ ||
                           state_ == State::kSynSent ||
                           state_ == State::kSynReceived;
  if (!outstanding) return;
  if (retries_ >= kTcpMaxRetries) {
    if (stack_.on_stall_) stack_.on_stall_(four_tuple(), retries_);
    enter_closed(error(ErrorCode::kConnectionFailed,
                       "retransmission timeout"));
    return;
  }
  ++retries_;
  ++retransmits_;
  ++stack_.retransmits_;
  stack_.ensure_telemetry();
  stack_.tel_rto_fired_->add();
  stack_.tel_retransmits_->add();
  if (retries_ == kTcpStallRetries && stack_.on_stall_) {
    stack_.on_stall_(four_tuple(), retries_);
  }
  rto_ = std::min<sim::Duration>(rto_ * 2, kTcpMaxRto);
  rewind_and_resend();
  arm_rto();
}

void TcpConnection::rewind_and_resend() {
  // Karn: any retransmission makes the in-flight RTT probe ambiguous
  // (the eventual ACK could match either transmission) — discard it.
  rtt_probe_armed_ = false;
  switch (state_) {
    case State::kSynSent:
      send_syn();
      return;
    case State::kSynReceived:
      send_synack();
      return;
    default:
      break;
  }
  // Go-back-N: rewind to the oldest unacknowledged byte and let pump()
  // resend the window (and the FIN, if it was already out).
  snd_nxt_ = snd_una_;
  fin_sent_ = false;
  pump();
}

void TcpConnection::handle_segment(const Packet& pkt) {
  if (state_ == State::kClosed) {
    if (pkt.tcp.flags & kTcpRst) return;
    if ((pkt.tcp.flags & kTcpFin) && pkt.tcp.seq < rcv_nxt_) {
      // Retransmitted FIN we already consumed — our final ACK was lost.
      emit(kTcpAck, {}, snd_nxt_);
      return;
    }
    emit(kTcpRst, {}, snd_nxt_);
    return;
  }

  if (pkt.tcp.flags & kTcpRst) {
    enter_closed(error(ErrorCode::kConnectionFailed, "connection reset"));
    return;
  }

  peer_window_ = pkt.tcp.window;

  // Handshake.
  if (state_ == State::kSynSent) {
    if ((pkt.tcp.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck)) {
      rcv_nxt_ = pkt.tcp.seq + 1;
      snd_una_ = snd_nxt_ = pkt.tcp.ack;  // our SYN consumed seq 0
      state_ = State::kEstablished;
      retries_ = 0;
      rto_ = kTcpInitialRto;
      cancel_rto();
      send_ack();
      if (on_established_) on_established_();
      pump();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (pkt.tcp.flags & kTcpAck) {
      snd_una_ = snd_nxt_ = pkt.tcp.ack;
      state_ = State::kEstablished;
      retries_ = 0;
      rto_ = kTcpInitialRto;
      cancel_rto();
      if (accept_pending_) {
        auto cb = std::move(accept_pending_);
        accept_pending_ = nullptr;
        cb(*this);
      }
      // Fall through: the handshake ACK may carry data (a client that
      // sends immediately after establishing).
    } else {
      return;  // duplicate SYN: our SYN-ACK retransmission covers it
    }
  }

  // A retransmitted SYN-ACK after we're established means our handshake
  // ACK was lost: re-ACK so the server completes too.
  if (pkt.tcp.flags & kTcpSyn) {
    send_ack();
    return;
  }

  // ACK processing.
  if (pkt.tcp.flags & kTcpAck) {
    if (pkt.tcp.ack > snd_una_) {
      const std::uint64_t limit = std::min(pkt.tcp.ack, snd_nxt_);
      // O(1) trim: advance the head offset, popping (refcount-dropping)
      // whole chunks as they fully fall below the ACK watermark. No byte
      // is touched.
      std::size_t pop = static_cast<std::size_t>(
          std::min<std::uint64_t>(limit - snd_una_, send_size_));
      send_size_ -= pop;
      while (pop > 0) {
        const std::size_t avail = send_chunks_.front().size() - chunk_head_;
        if (pop >= avail) {
          pop -= avail;
          send_chunks_.pop_front();
          chunk_head_ = 0;
        } else {
          chunk_head_ += pop;
          pop = 0;
        }
      }
      snd_una_ = limit;
      if (rtt_probe_armed_ && snd_una_ >= rtt_probe_seq_) {
        rtt_probe_armed_ = false;
        stack_.ensure_telemetry();
        stack_.tel_rtt_->record(static_cast<std::int64_t>(
            stack_.node().executor().now() - rtt_probe_sent_));
      }
      dup_acks_ = 0;
      retries_ = 0;
      rto_ = kTcpInitialRto;
      if (snd_una_ == snd_nxt_) {
        cancel_rto();
      } else {
        restart_rto();
      }
      if (on_ack_) on_ack_();
    } else if (pkt.tcp.ack == snd_una_ && snd_nxt_ > snd_una_ &&
               pkt.payload.empty() && !(pkt.tcp.flags & kTcpFin)) {
      // Duplicate ACK: the receiver saw a gap. Three in a row trigger
      // fast retransmit without waiting for the RTO — but at most once
      // per loss event: further duplicates (echoes of our own resent
      // window) are ignored until the ACK passes the recovery point.
      if (++dup_acks_ >= 3) {
        dup_acks_ = 0;
        if (snd_una_ >= fast_recovery_until_) {
          fast_recovery_until_ = snd_nxt_;
          ++retransmits_;
          ++stack_.retransmits_;
          stack_.ensure_telemetry();
          stack_.tel_fast_retransmits_->add();
          stack_.tel_retransmits_->add();
          rewind_and_resend();
          restart_rto();
        }
      }
    }
  }
  if (state_ == State::kClosed) return;  // on_ack_ may have aborted us

  bool should_ack = false;

  // Data. Every payload-bearing segment triggers an ACK: a cumulative one
  // when it advances rcv_nxt_, a duplicate ACK when it's a repeat or a
  // gap (go-back-N sender interprets the duplicates as loss).
  if (!pkt.payload.empty()) {
    should_ack = true;
    const std::uint64_t seg_end = pkt.tcp.seq + pkt.payload.size();
    if (pkt.tcp.seq <= rcv_nxt_ && seg_end > rcv_nxt_) {
      // In-order, possibly partially duplicate — a go-back-N resend
      // overlapping bytes we already accepted, or a full segment resent
      // after we trimmed its tail at the window edge, or a zero-window
      // probe's byte racing our window update. Accept the fresh suffix.
      Buf fresh = pkt.payload.slice(
          static_cast<std::size_t>(rcv_nxt_ - pkt.tcp.seq));
      // Window enforcement: bytes past the furthest right edge we ever
      // advertised were never permitted — trim them off un-ACKed. The
      // sender retransmits them once consume() reopens the window.
      if (rcv_nxt_ + fresh.size() > rcv_window_edge_) {
        const std::size_t fit = static_cast<std::size_t>(
            rcv_window_edge_ > rcv_nxt_ ? rcv_window_edge_ - rcv_nxt_ : 0);
        stack_.note_window_overrun(fresh.size() - fit);
        fresh = fresh.slice(0, fit);
      }
      if (!fresh.empty()) {
        const std::size_t n = fresh.size();
        rcv_nxt_ += n;
        bytes_received_ += n;
        rcv_buffered_ += n;
        if (on_data_) {
          on_data_(std::move(fresh));  // refcounted share, not a byte copy
          // Without credit-based delivery the handoff frees the buffer;
          // the ACK below advertises the refreshed window.
          if (!credit_based_) rcv_buffered_ -= std::min(n, rcv_buffered_);
        } else {
          pending_rx_.push_back(std::move(fresh));
        }
        if (state_ == State::kClosed) return;  // on_data_ may have closed us
      }
    } else if (seg_end <= rcv_nxt_) {
      // Fully duplicate segment: re-ACK only.
    } else {
      log_debug("tcp") << "out-of-order segment (seq=" << pkt.tcp.seq
                       << " expected=" << rcv_nxt_ << "), dup-ACKing";
    }
  }

  // FIN processing: consumed only when it lands exactly at rcv_nxt_
  // (after any in-segment payload); an out-of-order FIN is re-ACKed so
  // the peer retransmits the missing bytes first.
  if (pkt.tcp.flags & kTcpFin) {
    if (pkt.tcp.seq + pkt.payload.size() == rcv_nxt_) {
      rcv_nxt_ += 1;
      send_ack();
      enter_closed(Status::ok());
      return;
    }
    should_ack = true;
  }

  if (should_ack) send_ack();
  if (state_ == State::kEstablished || state_ == State::kFinSent) pump();

  // Our FIN fully acknowledged: done.
  if (state_ == State::kFinSent && snd_una_ == snd_nxt_) {
    enter_closed(Status::ok());
  }
}

void TcpConnection::enter_closed(Status status) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  cancel_rto();
  if (on_closed_) on_closed_(status);
}

}  // namespace storm::net
