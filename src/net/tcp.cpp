#include "net/tcp.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/node.hpp"

namespace storm::net {

// ---------------------------------------------------------------- TcpStack

void TcpStack::listen(std::uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpConnection& TcpStack::connect(
    SocketAddr remote, TcpConnection::EstablishedCallback on_established,
    std::uint16_t local_port) {
  if (local_port == 0) local_port = allocate_ephemeral_port();
  last_connect_port_ = local_port;

  // Local IP: the NIC that routes toward the destination (standard source
  // address selection). NAT may rewrite the flow on the way out, but the
  // socket is keyed by its pre-NAT tuple, as on a real host.
  SocketAddr local{node_.source_ip_for(remote.ip), local_port};
  auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
      *this, local, remote, /*initiator=*/true, default_window_));
  conn->on_established_ = std::move(on_established);
  TcpConnection& ref = *conn;
  connections_[FourTuple{local, remote}] = std::move(conn);

  Packet syn;
  syn.ip.src = local.ip;
  syn.ip.dst = remote.ip;
  syn.tcp.src_port = local.port;
  syn.tcp.dst_port = remote.port;
  syn.tcp.flags = kTcpSyn;
  syn.tcp.seq = 0;
  syn.tcp.window = default_window_;
  transmit(std::move(syn));
  return ref;
}

void TcpStack::handle_segment(Packet pkt) {
  const FourTuple key{{pkt.ip.dst, pkt.tcp.dst_port},
                      {pkt.ip.src, pkt.tcp.src_port}};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    // A SYN re-using the 4-tuple of a closed connection starts a new one
    // (port reuse after RST — the active relay's recovery path does this).
    bool is_fresh_syn = (pkt.tcp.flags & kTcpSyn) && !(pkt.tcp.flags & kTcpAck) &&
                        it->second->state() == TcpConnection::State::kClosed;
    if (!is_fresh_syn) {
      it->second->handle_segment(pkt);
      return;
    }
    connections_.erase(it);
  }
  auto lit = listeners_.end();
  if ((pkt.tcp.flags & kTcpSyn) && !(pkt.tcp.flags & kTcpAck)) {
    lit = listeners_.find(pkt.tcp.dst_port);
  }
  if (lit != listeners_.end()) {
    auto conn = std::unique_ptr<TcpConnection>(
        new TcpConnection(*this, key.src, key.dst, /*initiator=*/false,
                          default_window_));
    TcpConnection& ref = *conn;
    ref.peer_window_ = pkt.tcp.window;
    ref.rcv_nxt_ = pkt.tcp.seq + 1;  // consume the SYN
    connections_[key] = std::move(conn);

    Packet synack;
    synack.ip.src = key.src.ip;
    synack.ip.dst = key.dst.ip;
    synack.tcp.src_port = key.src.port;
    synack.tcp.dst_port = key.dst.port;
    synack.tcp.flags = kTcpSyn | kTcpAck;
    synack.tcp.seq = 0;
    synack.tcp.ack = ref.rcv_nxt_;
    synack.tcp.window = ref.recv_window_;
    ref.accept_pending_ = lit->second;
    transmit(std::move(synack));
    return;
  }
  // Segment for an unknown connection: answer with RST (unless it is one).
  if (!(pkt.tcp.flags & kTcpRst)) {
    Packet rst;
    rst.ip.src = pkt.ip.dst;
    rst.ip.dst = pkt.ip.src;
    rst.tcp.src_port = pkt.tcp.dst_port;
    rst.tcp.dst_port = pkt.tcp.src_port;
    rst.tcp.flags = kTcpRst;
    transmit(std::move(rst));
  }
}

void TcpStack::transmit(Packet pkt) { node_.send_ip(std::move(pkt)); }

// ----------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(TcpStack& stack, SocketAddr local,
                             SocketAddr remote, bool initiator,
                             std::uint32_t window)
    : stack_(stack), local_(local), remote_(remote),
      state_(initiator ? State::kSynSent : State::kSynReceived),
      send_window_cap_(window), peer_window_(window), recv_window_(window) {}

void TcpConnection::send(Bytes data) {
  if (state_ == State::kClosed || fin_pending_) return;
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::set_on_data(DataCallback cb) {
  on_data_ = std::move(cb);
  if (!pending_rx_.empty() && on_data_) {
    Bytes buffered;
    buffered.swap(pending_rx_);
    on_data_(std::move(buffered));
  }
}

void TcpConnection::close() {
  if (state_ == State::kClosed || fin_pending_) return;
  fin_pending_ = true;
  if (state_ == State::kEstablished) pump();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  emit(kTcpRst, {}, snd_nxt_);
  enter_closed(error(ErrorCode::kConnectionFailed, "local abort"));
}

void TcpConnection::emit(std::uint8_t flags, Bytes payload,
                         std::uint64_t seq) {
  Packet pkt;
  pkt.ip.src = local_.ip;
  pkt.ip.dst = remote_.ip;
  pkt.tcp.src_port = local_.port;
  pkt.tcp.dst_port = remote_.port;
  pkt.tcp.flags = flags;
  pkt.tcp.seq = seq;
  pkt.tcp.ack = rcv_nxt_;
  pkt.tcp.window = recv_window_;
  pkt.payload = std::move(payload);
  stack_.transmit(std::move(pkt));
}

void TcpConnection::send_ack() { emit(kTcpAck, {}, snd_nxt_); }

void TcpConnection::pump() {
  if (state_ != State::kEstablished && state_ != State::kFinSent) return;
  const std::uint32_t window = std::min(send_window_cap_, peer_window_);
  while (!send_buf_.empty() && snd_nxt_ - snd_una_ < window) {
    std::size_t allowed = window - static_cast<std::size_t>(snd_nxt_ - snd_una_);
    std::size_t len = std::min({kTcpMss, send_buf_.size(), allowed});
    if (len == 0) break;
    Bytes payload(send_buf_.begin(),
                  send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    emit(kTcpAck, std::move(payload), snd_nxt_);
    snd_nxt_ += len;
    bytes_sent_ += len;
  }
  if (fin_pending_ && !fin_sent_ && send_buf_.empty() &&
      snd_una_ == snd_nxt_) {
    emit(kTcpFin | kTcpAck, {}, snd_nxt_);
    snd_nxt_ += 1;  // FIN consumes a sequence number
    fin_sent_ = true;
    state_ = State::kFinSent;
  }
}

void TcpConnection::handle_segment(const Packet& pkt) {
  if (state_ == State::kClosed) return;

  if (pkt.tcp.flags & kTcpRst) {
    enter_closed(error(ErrorCode::kConnectionFailed, "connection reset"));
    return;
  }

  peer_window_ = pkt.tcp.window;

  // Handshake.
  if (state_ == State::kSynSent) {
    if ((pkt.tcp.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck)) {
      rcv_nxt_ = pkt.tcp.seq + 1;
      snd_una_ = snd_nxt_ = pkt.tcp.ack;  // our SYN consumed seq 0
      state_ = State::kEstablished;
      send_ack();
      if (on_established_) on_established_();
      pump();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (pkt.tcp.flags & kTcpAck) {
      snd_una_ = snd_nxt_ = pkt.tcp.ack;
      state_ = State::kEstablished;
      if (accept_pending_) {
        auto cb = std::move(accept_pending_);
        accept_pending_ = nullptr;
        cb(*this);
      }
      // Fall through: the handshake ACK may carry data (none in this
      // stack, but harmless).
    } else {
      return;
    }
  }

  // ACK processing.
  if (pkt.tcp.flags & kTcpAck) {
    if (pkt.tcp.ack > snd_una_) {
      snd_una_ = std::min(pkt.tcp.ack, snd_nxt_);
      if (on_ack_) on_ack_();
    }
  }

  bool advanced = false;

  // In-order data.
  if (!pkt.payload.empty()) {
    if (pkt.tcp.seq == rcv_nxt_) {
      rcv_nxt_ += pkt.payload.size();
      bytes_received_ += pkt.payload.size();
      advanced = true;
      if (on_data_) {
        on_data_(pkt.payload);
      } else {
        pending_rx_.insert(pending_rx_.end(), pkt.payload.begin(),
                           pkt.payload.end());
      }
    } else if (pkt.tcp.seq + pkt.payload.size() <= rcv_nxt_) {
      advanced = true;  // duplicate: re-ACK
    } else {
      log_warn("tcp") << "out-of-order segment dropped (seq=" << pkt.tcp.seq
                      << " expected=" << rcv_nxt_ << ")";
    }
  }

  // FIN processing.
  if (pkt.tcp.flags & kTcpFin) {
    if (pkt.tcp.seq == rcv_nxt_ ||
        (!pkt.payload.empty() && advanced)) {
      rcv_nxt_ += 1;
      advanced = true;
      send_ack();
      enter_closed(Status::ok());
      return;
    }
  }

  if (advanced) send_ack();
  if (state_ == State::kEstablished || state_ == State::kFinSent) pump();

  // Our FIN fully acknowledged: done.
  if (state_ == State::kFinSent && snd_una_ == snd_nxt_) {
    enter_closed(Status::ok());
  }
}

void TcpConnection::enter_closed(Status status) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (on_closed_) on_closed_(status);
}

}  // namespace storm::net
