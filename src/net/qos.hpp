// Per-tenant token-bucket rate limiter (paper §III-D tenant policies;
// QoS in the spirit of IOArbiter's per-tenant backend throttling).
//
// Installed on a tenant's ingress gateway NetNode, the bucket admits
// forwarded packets at a configured byte rate with a bounded burst.
// Packets that exceed the available tokens are queued FIFO and released
// by a deterministic sim-clock drain — never dropped, so TCP above sees
// added latency (and eventually closed windows via the flow-control
// spine), not loss. A packet larger than the whole burst still passes:
// the bucket lets the balance go negative and charges the debt to the
// refill stream (deficit model), so rate_bytes_per_sec is honored
// without deadlocking jumbo segments.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace storm::net {

class TokenBucket {
 public:
  TokenBucket(sim::Executor executor, std::uint64_t rate_bytes_per_sec,
              std::uint64_t burst_bytes);

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;
  ~TokenBucket() { drain_token_.cancel(); }

  /// Wire accounting into the telemetry registry. `throttled_bytes`
  /// counts bytes that had to wait for tokens; `queue_bytes` gauges the
  /// bytes currently held back.
  void bind_telemetry(obs::Counter* throttled_bytes, obs::Gauge* queue_bytes) {
    tel_throttled_ = throttled_bytes;
    tel_queue_ = queue_bytes;
  }

  /// Admit `bytes` of traffic: runs `release` immediately when the
  /// bucket covers it (and earlier queued traffic has drained),
  /// otherwise queues it until refill. FIFO order is preserved.
  void admit(std::size_t bytes, std::function<void()> release);

  /// Retune the limiter in place (autoscaler: capacity follows the
  /// replica count). Accrual earned under the old rate is settled first
  /// and the balance clamped to the new burst cap, so tokens banked at
  /// the old rate can never exceed the new cap mid-drain; a pending
  /// drain is rescheduled because its ETA was priced at the old rate.
  /// Queued traffic stays queued (FIFO order preserved) and pays the new
  /// rate from now on. A zero `burst_bytes` keeps the current burst.
  void set_rate(std::uint64_t rate_bytes_per_sec,
                std::uint64_t burst_bytes = 0);

  bool idle() const { return queue_.empty(); }
  std::size_t queued_bytes() const { return queued_bytes_; }
  std::uint64_t throttled_bytes() const { return throttled_bytes_; }
  std::uint64_t admitted_bytes() const { return admitted_bytes_; }
  std::uint64_t rate_bytes_per_sec() const { return rate_; }
  std::uint64_t burst_bytes() const { return burst_; }

 private:
  struct Pending {
    std::size_t bytes;
    std::function<void()> release;
  };

  void refill();
  void drain();
  void schedule_drain();
  /// Nanoseconds until `deficit` bytes worth of tokens accrue.
  sim::Duration eta(double deficit) const;

  sim::Executor sim_;
  std::uint64_t rate_;   // bytes per second
  std::uint64_t burst_;  // token cap (and initial fill)
  double tokens_;        // may go negative under the deficit model
  sim::Time last_refill_ = 0;
  std::deque<Pending> queue_;
  std::size_t queued_bytes_ = 0;
  std::uint64_t throttled_bytes_ = 0;
  std::uint64_t admitted_bytes_ = 0;
  sim::CancelToken drain_token_;
  obs::Counter* tel_throttled_ = nullptr;
  obs::Gauge* tel_queue_ = nullptr;
};

}  // namespace storm::net
