// iptables-style NAT with connection tracking.
//
// Rules match the *pre-translation* packet and may rewrite source
// (SNAT / masquerading) and/or destination (DNAT). The first packet of a
// flow that matches a rule creates a conntrack entry; subsequent packets
// (and replies) are translated from conntrack alone. This is what makes
// StorM's atomic volume attachment work: the platform removes the rules
// right after attach, and established flows keep flowing because their
// conntrack entries survive rule removal (paper §III-A).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"

namespace storm::net {

struct NatRule {
  // Match (wildcard when empty). Matches the packet before translation.
  std::optional<Ipv4Addr> match_src_ip;
  std::optional<std::uint16_t> match_src_port;
  std::optional<Ipv4Addr> match_dst_ip;
  std::optional<std::uint16_t> match_dst_port;

  // Rewrites to apply (any subset).
  std::optional<Ipv4Addr> snat_ip;
  std::optional<std::uint16_t> snat_port;
  std::optional<Ipv4Addr> dnat_ip;
  std::optional<std::uint16_t> dnat_port;

  std::uint64_t cookie = 0;

  bool matches(const Packet& pkt) const;
  std::string to_string() const;
};

class NatEngine {
 public:
  void add_rule(NatRule rule) { rules_.push_back(std::move(rule)); }
  /// Remove every rule tagged `cookie`. By default the conntrack entries
  /// those rules created stay alive — that survival is what makes atomic
  /// volume attachment work (the platform removes the redirect right
  /// after login and the established flow keeps translating). Pass
  /// `flush_conntrack = true` on detach/teardown paths, where leaving
  /// the entries would keep a detached volume's flows translating
  /// forever.
  std::size_t remove_rules_by_cookie(std::uint64_t cookie,
                                     bool flush_conntrack = false);
  std::size_t rule_count() const { return rules_.size(); }

  /// Translate a packet traversing this node's IP layer. Returns true if
  /// any translation was applied (conntrack or rule).
  bool translate(Packet& pkt);

  std::size_t conntrack_size() const { return forward_.size(); }
  void flush_conntrack();
  /// Drop conntrack entries created by rules tagged `cookie`.
  std::size_t flush_conntrack_by_cookie(std::uint64_t cookie);

  /// Wire hit accounting into the telemetry registry (NetNode does this;
  /// an unbound engine just keeps its local counts). `rule_hits` counts
  /// first-packet rule matches (conntrack entry creation), `conntrack_hits`
  /// translations served from established entries.
  void bind_telemetry(obs::Counter* rule_hits, obs::Counter* conntrack_hits) {
    tel_rule_hits_ = rule_hits;
    tel_conntrack_hits_ = conntrack_hits;
  }

  std::uint64_t rule_hits() const { return rule_hits_; }
  std::uint64_t conntrack_hits() const { return conntrack_hits_; }

 private:
  static void apply(Packet& pkt, const FourTuple& to);

  std::uint64_t rule_hits_ = 0;
  std::uint64_t conntrack_hits_ = 0;
  obs::Counter* tel_rule_hits_ = nullptr;
  obs::Counter* tel_conntrack_hits_ = nullptr;
  /// Conntrack value: the rewrite plus the cookie of the rule that
  /// created the entry, so detach can flush exactly its own flows.
  struct Conntrack {
    FourTuple to;
    std::uint64_t cookie = 0;
  };

  std::vector<NatRule> rules_;
  std::map<FourTuple, Conntrack> forward_;  // orig -> translated
  std::map<FourTuple, Conntrack> reverse_;  // reverse(translated) -> reverse(orig)
};

}  // namespace storm::net
