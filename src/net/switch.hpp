// L2 learning switch: MAC table learned from source addresses, flooding
// for unknown/broadcast destinations. Base for the OVS-style FlowSwitch.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace storm::net {

class L2Switch {
 public:
  L2Switch(sim::Executor executor, std::string name,
           sim::Duration per_packet_latency = sim::microseconds(2))
      : sim_(executor), name_(std::move(name)), latency_(per_packet_latency) {}

  virtual ~L2Switch() = default;
  L2Switch(const L2Switch&) = delete;
  L2Switch& operator=(const L2Switch&) = delete;

  /// Wire `link` end `end` into this switch; returns the port number.
  int attach(Link& link, int end);

  int port_count() const { return static_cast<int>(ports_.size()); }
  const std::string& name() const { return name_; }

  std::uint64_t packets_switched() const { return packets_; }

 protected:
  /// Default data path: learn + forward. FlowSwitch overrides.
  virtual void process(int in_port, Packet pkt);

  /// L2 learn/forward used both directly and as OVS "NORMAL" action.
  void forward_normal(int in_port, Packet&& pkt);

  /// Emit on a specific port.
  void output(int port, Packet&& pkt);

  sim::Executor sim_;

 private:
  void on_receive(int in_port, Packet pkt);

  struct Port {
    Link* link;
    int end;
  };

  std::string name_;
  sim::Duration latency_;
  std::vector<Port> ports_;
  std::map<std::uint64_t, int> mac_table_;  // MAC value -> port
  std::uint64_t packets_ = 0;
};

}  // namespace storm::net
