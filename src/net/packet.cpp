#include "net/packet.hpp"

#include <sstream>

#include "common/hash.hpp"

namespace storm::net {

std::uint32_t tcp_checksum(const Packet& pkt) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ull;
    h ^= h >> 32;
  };
  mix(pkt.tcp.seq);
  mix(pkt.tcp.ack);
  mix(pkt.tcp.flags);
  mix(pkt.tcp.window);
  mix(pkt.payload.size());
  if (!pkt.payload.empty()) mix(crc32(pkt.payload));
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

std::string Packet::summary() const {
  std::ostringstream out;
  out << to_string(ip.src) << ":" << tcp.src_port << " -> "
      << to_string(ip.dst) << ":" << tcp.dst_port << " [";
  if (tcp.flags & kTcpSyn) out << "S";
  if (tcp.flags & kTcpFin) out << "F";
  if (tcp.flags & kTcpRst) out << "R";
  if (tcp.flags & kTcpAck) out << ".";
  out << "] seq=" << tcp.seq << " ack=" << tcp.ack
      << " len=" << payload.size();
  return out.str();
}

Bytes serialize(const Packet& pkt) {
  Bytes out;
  out.reserve(pkt.codec_size());
  ByteWriter w(out);
  // Ethernet
  w.u16(static_cast<std::uint16_t>(pkt.eth.dst.value >> 32));
  w.u32(static_cast<std::uint32_t>(pkt.eth.dst.value));
  w.u16(static_cast<std::uint16_t>(pkt.eth.src.value >> 32));
  w.u32(static_cast<std::uint32_t>(pkt.eth.src.value));
  w.u16(static_cast<std::uint16_t>(pkt.eth.type));
  // IPv4 (fixed 20-byte header; length/checksum filled for realism)
  w.u8(0x45);  // version=4, ihl=5
  w.u8(0);     // dscp/ecn
  w.u16(static_cast<std::uint16_t>(Ipv4Header::kWireSize +
                                   TcpHeader::kCodecSize +
                                   pkt.payload.size()));
  w.u16(0);  // identification
  w.u16(0);  // flags/fragment
  w.u8(pkt.ip.ttl);
  w.u8(static_cast<std::uint8_t>(pkt.ip.proto));
  w.u16(0);  // header checksum (not modeled)
  w.u32(pkt.ip.src.value);
  w.u32(pkt.ip.dst.value);
  // TCP (seq/ack widened to u64; see TcpHeader)
  w.u16(pkt.tcp.src_port);
  w.u16(pkt.tcp.dst_port);
  w.u64(pkt.tcp.seq);
  w.u64(pkt.tcp.ack);
  w.u8(0x50);  // data offset = 5 words
  w.u8(pkt.tcp.flags);
  w.u32(pkt.tcp.window);
  w.u32(pkt.tcp.checksum);
  w.u16(0);  // urgent
  w.raw(pkt.payload);
  return out;
}

Packet parse_packet(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  Packet pkt;
  std::uint64_t dst_hi = r.u16();
  pkt.eth.dst.value = (dst_hi << 32) | r.u32();
  std::uint64_t src_hi = r.u16();
  pkt.eth.src.value = (src_hi << 32) | r.u32();
  pkt.eth.type = static_cast<EtherType>(r.u16());

  std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) throw std::out_of_range("not IPv4");
  r.skip(1);
  std::uint16_t total_len = r.u16();
  r.skip(4);
  pkt.ip.ttl = r.u8();
  pkt.ip.proto = static_cast<IpProto>(r.u8());
  r.skip(2);
  pkt.ip.src.value = r.u32();
  pkt.ip.dst.value = r.u32();

  pkt.tcp.src_port = r.u16();
  pkt.tcp.dst_port = r.u16();
  pkt.tcp.seq = r.u64();
  pkt.tcp.ack = r.u64();
  r.skip(1);
  pkt.tcp.flags = r.u8();
  pkt.tcp.window = r.u32();
  pkt.tcp.checksum = r.u32();
  r.skip(2);

  std::size_t payload_len =
      total_len - Ipv4Header::kWireSize - TcpHeader::kCodecSize;
  pkt.payload = r.raw(payload_len);
  return pkt;
}

}  // namespace storm::net
