// L2/L3 addressing primitives for the simulated fabrics.
#pragma once

#include <cstdint>
#include <string>

namespace storm::net {

/// 48-bit Ethernet MAC address stored in the low bits of a u64.
struct MacAddr {
  std::uint64_t value = 0;

  static constexpr MacAddr broadcast() { return {0xFFFFFFFFFFFFull}; }

  bool is_broadcast() const { return value == 0xFFFFFFFFFFFFull; }
  auto operator<=>(const MacAddr&) const = default;
};

std::string to_string(MacAddr mac);

/// IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  static Ipv4Addr from_string(const std::string& dotted);
  auto operator<=>(const Ipv4Addr&) const = default;
};

std::string to_string(Ipv4Addr ip);

/// CIDR subnet, e.g. {10.1.0.0, 16}.
struct Subnet {
  Ipv4Addr network;
  int prefix_len = 24;

  bool contains(Ipv4Addr ip) const {
    if (prefix_len <= 0) return true;
    std::uint32_t mask = prefix_len >= 32
                             ? 0xFFFFFFFFu
                             : ~((1u << (32 - prefix_len)) - 1);
    return (ip.value & mask) == (network.value & mask);
  }
};

/// TCP/UDP endpoint.
struct SocketAddr {
  Ipv4Addr ip;
  std::uint16_t port = 0;

  auto operator<=>(const SocketAddr&) const = default;
};

std::string to_string(SocketAddr addr);

/// Connection 4-tuple as used by NAT conntrack and connection attribution.
struct FourTuple {
  SocketAddr src;
  SocketAddr dst;

  auto operator<=>(const FourTuple&) const = default;
};

std::string to_string(const FourTuple& tuple);

}  // namespace storm::net
