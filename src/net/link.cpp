#include "net/link.hpp"

#include <utility>

namespace storm::net {

void Link::send(int from_end, Packet pkt) {
  if (down_) return;
  const int to_end = 1 - from_end;
  auto& receiver = receivers_.at(static_cast<std::size_t>(to_end));
  if (!receiver) return;

  const std::uint64_t bits = pkt.wire_size() * 8ull;
  const auto ser = static_cast<sim::Duration>(bits * 1'000'000'000ull / bps_);

  // FIFO through the per-direction serializer.
  auto& next_free = next_free_[static_cast<std::size_t>(from_end)];
  sim::Time start = std::max(sim_.now(), next_free);
  next_free = start + ser;
  sim::Time deliver_at = next_free + prop_;

  packets_ += 1;
  bytes_ += pkt.wire_size();
  sim_.at(deliver_at, [this, to_end, p = std::move(pkt)]() mutable {
    if (down_) return;  // went down while in flight
    receivers_[static_cast<std::size_t>(to_end)](std::move(p));
  });
}

}  // namespace storm::net
