#include "net/link.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace storm::net {

void Link::ensure_telemetry() {
  if (telemetry_ready_) return;
  telemetry_ready_ = true;
  obs::Registry& reg = sim_.telemetry();
  tel_total_packets_ = &reg.counter("net.link.packets");
  tel_total_bytes_ = &reg.counter("net.link.bytes");
  tel_faults_ = &reg.counter("net.link.faults");
  tel_queue_wait_ = &reg.histogram("net.link.queue_wait_ns");
  if (!label_.empty()) {
    tel_packets_ = &reg.counter("net.link." + label_ + ".packets");
    tel_bytes_ = &reg.counter("net.link." + label_ + ".bytes");
  } else {
    tel_packets_ = nullptr;
    tel_bytes_ = nullptr;
  }
}

void Link::send(int from_end, Packet pkt) {
  if (down_) return;
  const int to_end = 1 - from_end;
  auto& receiver = receivers_.at(static_cast<std::size_t>(to_end));
  if (!receiver) return;
  ensure_telemetry();

  sim::PacketFaultDecision fault;
  if (fault_ && fault_profile_.enabled()) {
    fault = fault_->decide(fault_profile_, fault_label_);
    if (fault.drop) {
      ++faults_;
      tel_faults_->add();
      return;
    }
    if (fault.corrupt) {
      ++faults_;
      tel_faults_->add();
      if (!pkt.payload.empty()) {
        // COW: a duplicated/retransmitted sibling of this packet keeps
        // its clean bytes; only this in-flight copy is corrupted.
        fault_->flip_random_bit(pkt.payload.mutable_span());
      } else {
        // Header-only segment: flip a bit in a checksum-covered field so
        // the corruption is detectable, as on a real wire.
        pkt.tcp.seq ^= 1ull << fault_->rng().below(64);
      }
    }
    if (fault.duplicate || fault.extra_delay > 0) {
      ++faults_;
      tel_faults_->add();
    }
  }

  const int copies = fault.duplicate ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    const std::uint64_t bits = pkt.wire_size() * 8ull;
    const auto ser =
        static_cast<sim::Duration>(bits * 1'000'000'000ull / bps_);

    // FIFO through the per-direction serializer (a duplicate occupies a
    // second slot, like a real dupe on the wire).
    auto& next_free = next_free_[static_cast<std::size_t>(from_end)];
    sim::Time start = std::max(sim_.now(), next_free);
    tel_queue_wait_->record(static_cast<std::int64_t>(start - sim_.now()));
    next_free = start + ser;
    sim::Time deliver_at = next_free + prop_ + fault.extra_delay;

    packets_ += 1;
    bytes_ += pkt.wire_size();
    tel_total_packets_->add();
    tel_total_bytes_->add(pkt.wire_size());
    if (tel_packets_ != nullptr) {
      tel_packets_->add();
      tel_bytes_->add(pkt.wire_size());
    }
    Packet p = (copy + 1 < copies) ? pkt : std::move(pkt);
    sim_.at(deliver_at, [this, to_end, p = std::move(p)]() mutable {
      if (down_) return;  // went down while in flight
      receivers_[static_cast<std::size_t>(to_end)](std::move(p));
    });
  }
}

}  // namespace storm::net
