#include "net/link.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace storm::net {

void Link::ensure_telemetry(int end) {
  EndState& st = ends_[static_cast<std::size_t>(end)];
  if (st.ready) return;
  st.ready = true;
  obs::Registry& reg =
      execs_[static_cast<std::size_t>(end)].telemetry();
  st.tel_total_packets = &reg.counter("net.link.packets");
  st.tel_total_bytes = &reg.counter("net.link.bytes");
  st.tel_faults = &reg.counter("net.link.faults");
  st.tel_queue_wait = &reg.histogram("net.link.queue_wait_ns");
  if (!label_.empty()) {
    st.tel_packets = &reg.counter("net.link." + label_ + ".packets");
    st.tel_bytes = &reg.counter("net.link." + label_ + ".bytes");
  } else {
    st.tel_packets = nullptr;
    st.tel_bytes = nullptr;
  }
}

void Link::send(int from_end, Packet pkt) {
  if (is_down()) return;
  const int to_end = 1 - from_end;
  auto& receiver = receivers_.at(static_cast<std::size_t>(to_end));
  if (!receiver) return;
  ensure_telemetry(from_end);
  EndState& st = ends_[static_cast<std::size_t>(from_end)];
  sim::Executor from_exec = execs_[static_cast<std::size_t>(from_end)];

  sim::PacketFaultDecision fault;
  if (fault_ && fault_profile_.enabled()) {
    fault = fault_->decide(fault_profile_, fault_label_);
    if (fault.drop) {
      ++st.faults;
      st.tel_faults->add();
      return;
    }
    if (fault.corrupt) {
      ++st.faults;
      st.tel_faults->add();
      if (!pkt.payload.empty()) {
        // COW: a duplicated/retransmitted sibling of this packet keeps
        // its clean bytes; only this in-flight copy is corrupted.
        fault_->flip_random_bit(pkt.payload.mutable_span());
      } else {
        // Header-only segment: flip a bit in a checksum-covered field so
        // the corruption is detectable, as on a real wire.
        pkt.tcp.seq ^= 1ull << fault_->rng().below(64);
      }
    }
    if (fault.duplicate || fault.extra_delay > 0) {
      ++st.faults;
      st.tel_faults->add();
    }
  }

  const int copies = fault.duplicate ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    const std::uint64_t bits = pkt.wire_size() * 8ull;
    const auto ser =
        static_cast<sim::Duration>(bits * 1'000'000'000ull / bps_);

    // FIFO through the per-direction serializer (a duplicate occupies a
    // second slot, like a real dupe on the wire).
    const sim::Time now = from_exec.now();
    sim::Time start = std::max(now, st.next_free);
    st.tel_queue_wait->record(static_cast<std::int64_t>(start - now));
    st.next_free = start + ser;
    sim::Time deliver_at = st.next_free + prop_ + fault.extra_delay;

    st.packets += 1;
    st.bytes += pkt.wire_size();
    st.tel_total_packets->add();
    st.tel_total_bytes->add(pkt.wire_size());
    if (st.tel_packets != nullptr) {
      st.tel_packets->add();
      st.tel_bytes->add(pkt.wire_size());
    }
    Packet p = (copy + 1 < copies) ? pkt : std::move(pkt);
    // Deliver on the *receiving* end's executor: when the ends live in
    // different partitions this routes through the mailbox and lands in
    // the destination's next lookahead window.
    execs_[static_cast<std::size_t>(to_end)].schedule(
        deliver_at, [this, to_end, p = std::move(p)]() mutable {
          if (is_down()) return;  // went down while in flight
          receivers_[static_cast<std::size_t>(to_end)](std::move(p));
        });
  }
}

}  // namespace storm::net
