#include "net/node.hpp"

#include <cmath>
#include <stdexcept>

#include "common/log.hpp"
#include "net/qos.hpp"
#include "net/tcp.hpp"
#include "obs/registry.hpp"

namespace storm::net {

MacAddr ArpRegistry::lookup(Ipv4Addr ip) const {
  auto it = table_.find(ip.value);
  if (it == table_.end()) {
    throw std::runtime_error("ARP: no entry for " + to_string(ip));
  }
  return it->second;
}

NetNode::NetNode(sim::Executor executor, std::string name,
                 std::shared_ptr<ArpRegistry> arp)
    : sim_(executor), name_(std::move(name)), arp_(std::move(arp)),
      tcp_(std::make_unique<TcpStack>(*this)) {
  obs::Registry& reg = sim_.telemetry();
  nat_.bind_telemetry(&reg.counter("nat.rule_hits"),
                      &reg.counter("nat.conntrack_hits"));
}

NetNode::~NetNode() = default;

int NetNode::add_nic(MacAddr mac, Ipv4Addr ip, Subnet subnet, Link& link,
                     int end) {
  int index = static_cast<int>(nics_.size());
  nics_.push_back(Nic{mac, ip, subnet, &link, end});
  arp_->add(ip, mac);
  link.connect(end, [this, index](Packet pkt) { on_receive(index, pkt); });
  return index;
}

void NetNode::set_packet_processing(sim::Cpu* cpu, sim::Duration per_packet,
                                    double ns_per_byte) {
  cpu_ = cpu;
  per_packet_cost_ = per_packet;
  ns_per_byte_ = ns_per_byte;
}

bool NetNode::has_local_ip(Ipv4Addr ip) const {
  for (const Nic& nic : nics_) {
    if (nic.ip == ip) return true;
  }
  return false;
}

Ipv4Addr NetNode::source_ip_for(Ipv4Addr dst) const {
  int nic_index = route(dst);
  if (nic_index < 0) nic_index = 0;
  return nics_.at(static_cast<std::size_t>(nic_index)).ip;
}

Ipv4Addr NetNode::nic_ip(int nic_index) const {
  return nics_.at(static_cast<std::size_t>(nic_index)).ip;
}

MacAddr NetNode::nic_mac(int nic_index) const {
  return nics_.at(static_cast<std::size_t>(nic_index)).mac;
}

void NetNode::charge(std::size_t bytes, std::function<void()> then) {
  sim::Duration cost =
      per_packet_cost_ +
      static_cast<sim::Duration>(ns_per_byte_ * static_cast<double>(bytes));
  if (cost == 0) {
    then();
  } else if (cpu_ != nullptr) {
    cpu_->run(cost, std::move(then));
  } else {
    sim_.schedule_in(cost, std::move(then));
  }
}

void NetNode::on_receive(int nic_index, Packet pkt) {
  if (down_) return;
  const Nic& nic = nics_[static_cast<std::size_t>(nic_index)];
  // L2 filter: accept only frames addressed to this NIC (or broadcast).
  if (!pkt.eth.dst.is_broadcast() && pkt.eth.dst != nic.mac) return;
  ++received_;
  charge(pkt.wire_size(), [this, p = std::move(pkt)]() mutable {
    if (down_) return;
    deliver_or_forward(std::move(p));
  });
}

void NetNode::deliver_or_forward(Packet pkt) {
  nat_.translate(pkt);
  if (has_local_ip(pkt.ip.dst)) {
    tcp_->handle_segment(std::move(pkt));
    return;
  }
  if (!ip_forward_) {
    log_debug("node") << name_ << ": drop (not local, no ip_forward) "
                      << pkt.summary();
    return;
  }
  if (pkt.ip.ttl == 0) return;
  pkt.ip.ttl -= 1;
  ++forwarded_;
  if (forward_hook_ && forward_hook_(pkt)) {
    return;  // hook consumed it; it will call emit_forward()
  }
  if (limiter_ != nullptr) {
    // Tenant QoS: the token bucket paces forwarded bytes, releasing the
    // packet (in FIFO order) when credit accrues. Never dropped — TCP
    // above sees latency and closed windows, not loss.
    const std::size_t bytes = pkt.wire_size();
    limiter_->admit(bytes, [this, p = std::move(pkt)]() mutable {
      if (!down_) route_and_send(std::move(p));
    });
    return;
  }
  route_and_send(std::move(pkt));
}

int NetNode::route(Ipv4Addr dst) const {
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    if (nics_[i].subnet.contains(dst)) return static_cast<int>(i);
  }
  if (default_gw_.value != 0) {
    for (std::size_t i = 0; i < nics_.size(); ++i) {
      if (nics_[i].subnet.contains(default_gw_)) return static_cast<int>(i);
    }
  }
  return -1;
}

void NetNode::route_and_send(Packet pkt) {
  if (down_) return;
  int nic_index = route(pkt.ip.dst);
  if (nic_index < 0) {
    log_warn("node") << name_ << ": no route to " << to_string(pkt.ip.dst);
    return;
  }
  Nic& nic = nics_[static_cast<std::size_t>(nic_index)];
  Ipv4Addr next_hop =
      nic.subnet.contains(pkt.ip.dst) ? pkt.ip.dst : default_gw_;
  pkt.eth.src = nic.mac;
  pkt.eth.dst = arp_->lookup(next_hop);
  charge(pkt.wire_size(), [&nic, p = std::move(pkt), this]() mutable {
    if (down_) return;
    nic.link->send(nic.end, std::move(p));
  });
}

void NetNode::send_ip(Packet pkt) {
  if (down_) return;
  nat_.translate(pkt);
  // Loopback: both endpoints on this node (used by the active relay's
  // local pseudo-server redirection).
  if (has_local_ip(pkt.ip.dst)) {
    sim_.schedule_in(0, [this, p = std::move(pkt)]() mutable {
      if (!down_) tcp_->handle_segment(std::move(p));
    });
    return;
  }
  route_and_send(std::move(pkt));
}

}  // namespace storm::net
