// Point-to-point full-duplex link with bandwidth (serialization delay plus
// FIFO queueing) and propagation delay. Supports failure injection.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace storm::net {

class Link {
 public:
  using Receiver = std::function<void(Packet)>;

  Link(sim::Simulator& simulator, std::uint64_t bits_per_second,
       sim::Duration propagation_delay)
      : sim_(simulator), bps_(bits_per_second), prop_(propagation_delay) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Attach the receive callback for `end` (0 or 1).
  void connect(int end, Receiver receiver) {
    receivers_.at(static_cast<std::size_t>(end)) = std::move(receiver);
  }

  /// Transmit from `from_end`; delivered at the opposite end after
  /// queueing + serialization + propagation. Dropped if the link is down.
  void send(int from_end, Packet pkt);

  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Attach a fault plan: every packet crossing this link consults it with
  /// `profile`. `label` names the link in the plan's event trace. Pass
  /// nullptr to detach.
  void set_fault(sim::FaultPlan* plan, sim::PacketFaultProfile profile,
                 std::string label) {
    fault_ = plan;
    fault_profile_ = profile;
    fault_label_ = std::move(label);
  }
  const std::string& fault_label() const { return fault_label_; }

  /// Name this link for telemetry ("host0.storage", "vm.web1", ...):
  /// labeled links get per-link packet/byte counters next to the
  /// aggregate net.link.* metrics. Wired from Cloud::register_link.
  void set_label(std::string label) {
    label_ = std::move(label);
    telemetry_ready_ = false;  // re-resolve counters under the new name
  }
  const std::string& label() const { return label_; }

  std::uint64_t packets_delivered() const { return packets_; }
  std::uint64_t bytes_delivered() const { return bytes_; }
  std::uint64_t faults_injected() const { return faults_; }

 private:
  void ensure_telemetry();

  sim::Simulator& sim_;
  std::uint64_t bps_;
  sim::Duration prop_;
  bool down_ = false;
  std::array<Receiver, 2> receivers_{};
  std::array<sim::Time, 2> next_free_{};  // per-direction serializer
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t faults_ = 0;
  sim::FaultPlan* fault_ = nullptr;
  sim::PacketFaultProfile fault_profile_;
  std::string fault_label_;
  std::string label_;
  // Cached metric pointers (stable for the registry's lifetime).
  bool telemetry_ready_ = false;
  obs::Counter* tel_total_packets_ = nullptr;
  obs::Counter* tel_total_bytes_ = nullptr;
  obs::Counter* tel_faults_ = nullptr;
  obs::Counter* tel_packets_ = nullptr;  // per-link, only when labeled
  obs::Counter* tel_bytes_ = nullptr;
  obs::Histogram* tel_queue_wait_ = nullptr;
};

}  // namespace storm::net
