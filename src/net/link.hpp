// Point-to-point full-duplex link with bandwidth (serialization delay plus
// FIFO queueing) and propagation delay. Supports failure injection.
//
// Each end is bound to a sim::Executor, so a link may span two
// partitions of a parallel simulation: send() runs on the sending
// end's thread (per-end serializer, stats, and telemetry keep it
// race-free) and delivery is scheduled on the *receiving* end's
// executor, which routes through the cross-partition mailbox when the
// ends live in different partitions. Fault plans are the exception:
// a FaultPlan owns one Rng, so only attach one to links whose two ends
// share a partition (or to a single-partition simulation).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace storm::net {

class Link {
 public:
  using Receiver = std::function<void(Packet)>;

  Link(sim::Executor executor, std::uint64_t bits_per_second,
       sim::Duration propagation_delay)
      : execs_{executor, executor}, bps_(bits_per_second),
        prop_(propagation_delay) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Attach the receive callback for `end` (0 or 1).
  void connect(int end, Receiver receiver) {
    receivers_.at(static_cast<std::size_t>(end)) = std::move(receiver);
  }

  /// Rebind one end to another partition's executor. Wire-up time only
  /// (before the simulation runs): delivery to `end` is scheduled on
  /// this executor from then on. A rebind that makes the link span two
  /// partitions reports its propagation delay to the simulator — with
  /// ParallelConfig::auto_lookahead the window lookahead is derived from
  /// the minimum such delay instead of hand-tuned.
  void set_end_executor(int end, sim::Executor executor) {
    execs_.at(static_cast<std::size_t>(end)) = executor;
    ends_[static_cast<std::size_t>(end)].ready = false;
    if (execs_[0].valid() && execs_[1].valid() &&
        execs_[0].partition_id() != execs_[1].partition_id()) {
      executor.simulator().note_span_delay(prop_);
    }
  }
  sim::Executor end_executor(int end) const {
    return execs_.at(static_cast<std::size_t>(end));
  }

  /// Transmit from `from_end`; delivered at the opposite end after
  /// queueing + serialization + propagation. Dropped if the link is down.
  void send(int from_end, Packet pkt);

  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool is_down() const { return down_.load(std::memory_order_relaxed); }

  /// Attach a fault plan: every packet crossing this link consults it with
  /// `profile`. `label` names the link in the plan's event trace. Pass
  /// nullptr to detach. Intra-partition links only (see file comment).
  void set_fault(sim::FaultPlan* plan, sim::PacketFaultProfile profile,
                 std::string label) {
    fault_ = plan;
    fault_profile_ = profile;
    fault_label_ = std::move(label);
  }
  const std::string& fault_label() const { return fault_label_; }

  /// Name this link for telemetry ("host0.storage", "vm.web1", ...):
  /// labeled links get per-link packet/byte counters next to the
  /// aggregate net.link.* metrics. Wired from Cloud::register_link.
  void set_label(std::string label) {
    label_ = std::move(label);
    for (auto& end : ends_) end.ready = false;  // re-resolve under new name
  }
  const std::string& label() const { return label_; }

  std::uint64_t packets_delivered() const {
    return ends_[0].packets + ends_[1].packets;
  }
  std::uint64_t bytes_delivered() const {
    return ends_[0].bytes + ends_[1].bytes;
  }
  std::uint64_t faults_injected() const {
    return ends_[0].faults + ends_[1].faults;
  }

 private:
  // Everything send() mutates, keyed by the *sending* end, so the two
  // ends can transmit concurrently from different partition threads.
  struct EndState {
    sim::Time next_free = 0;  // this direction's serializer
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t faults = 0;
    // Cached metric pointers into this end's partition registry
    // (stable for the registry's lifetime).
    bool ready = false;
    obs::Counter* tel_total_packets = nullptr;
    obs::Counter* tel_total_bytes = nullptr;
    obs::Counter* tel_faults = nullptr;
    obs::Counter* tel_packets = nullptr;  // per-link, only when labeled
    obs::Counter* tel_bytes = nullptr;
    obs::Histogram* tel_queue_wait = nullptr;
  };

  void ensure_telemetry(int end);

  std::array<sim::Executor, 2> execs_;
  std::uint64_t bps_;
  sim::Duration prop_;
  std::atomic<bool> down_{false};
  std::array<Receiver, 2> receivers_{};
  std::array<EndState, 2> ends_{};
  sim::FaultPlan* fault_ = nullptr;
  sim::PacketFaultProfile fault_profile_;
  std::string fault_label_;
  std::string label_;
};

}  // namespace storm::net
