// NetNode: a Linux-like IP endpoint/forwarder — the building block for
// compute hosts, storage hosts, gateways, VMs and middle-boxes.
//
// Packet path mirrors a (very small) Linux stack:
//   NIC rx -> [per-packet CPU cost] -> NAT translate -> local deliver (TCP)
//                                    | or, with ip_forward on:
//                                    -> FORWARD hook -> route -> NIC tx
//
// * The NAT engine provides PREROUTING/POSTROUTING semantics collapsed
//   into a single conntrack-backed translation (see nat.hpp).
// * The FORWARD hook is where StorM's passive-relay interception attaches
//   (a netfilter-queue stand-in).
// * Per-packet CPU cost models the virtio copy path the paper blames for
//   intra-host overhead; when a sim::Cpu is attached, packets contend for
//   its cores.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/nat.hpp"
#include "net/packet.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"

namespace storm::net {

/// Cloud-controller-populated IP -> MAC map (stand-in for ARP; OpenStack
/// Neutron prepopulates ARP responders the same way).
class ArpRegistry {
 public:
  void add(Ipv4Addr ip, MacAddr mac) { table_[ip.value] = mac; }
  MacAddr lookup(Ipv4Addr ip) const;
  bool contains(Ipv4Addr ip) const { return table_.contains(ip.value); }

 private:
  std::map<std::uint32_t, MacAddr> table_;
};

class TcpStack;
class TokenBucket;

class NetNode {
 public:
  NetNode(sim::Executor executor, std::string name,
          std::shared_ptr<ArpRegistry> arp);
  ~NetNode();

  NetNode(const NetNode&) = delete;
  NetNode& operator=(const NetNode&) = delete;

  /// Attach a NIC wired to `link` end `end`. Registers ip->mac in ARP.
  /// Returns the NIC index.
  int add_nic(MacAddr mac, Ipv4Addr ip, Subnet subnet, Link& link, int end);

  void set_ip_forward(bool enabled) { ip_forward_ = enabled; }

  /// Route off-subnet traffic via this next hop (must be on some subnet).
  void set_default_gateway(Ipv4Addr gw) { default_gw_ = gw; }

  /// Per-packet processing cost (rx and tx). With a Cpu, packets contend
  /// for cores; without, the cost is pure latency.
  void set_packet_processing(sim::Cpu* cpu, sim::Duration per_packet,
                             double ns_per_byte);

  /// FORWARD-chain hook. Return true to consume the packet (the hook owns
  /// reinjection via emit_forward); false to let forwarding continue.
  using ForwardHook = std::function<bool(Packet&)>;
  void set_forward_hook(ForwardHook hook) { forward_hook_ = std::move(hook); }

  /// Rate-limit forwarded traffic through `bucket` (tc-style egress
  /// shaping on the FORWARD path; locally-terminated flows are exempt).
  /// The platform installs a per-tenant bucket on the tenant's ingress
  /// gateway. Pass nullptr to remove. Not owned.
  void set_rate_limiter(TokenBucket* bucket) { limiter_ = bucket; }
  TokenBucket* rate_limiter() const { return limiter_; }

  /// Send a locally-originated IP packet: NAT, route, fill L2, transmit.
  void send_ip(Packet pkt);

  /// Reinject a packet consumed by the FORWARD hook.
  void emit_forward(Packet pkt) { route_and_send(std::move(pkt)); }

  /// Node power/failure state: when down, drops all rx/tx traffic.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  bool has_local_ip(Ipv4Addr ip) const;

  /// Source-address selection: the IP of the NIC that routes toward dst.
  Ipv4Addr source_ip_for(Ipv4Addr dst) const;

  Ipv4Addr nic_ip(int nic_index) const;
  MacAddr nic_mac(int nic_index) const;
  int nic_count() const { return static_cast<int>(nics_.size()); }

  NatEngine& nat() { return nat_; }
  TcpStack& tcp() { return *tcp_; }
  sim::Executor executor() const { return sim_; }
  sim::Simulator& simulator() { return sim_.simulator(); }
  ArpRegistry& arp() { return *arp_; }
  const std::string& name() const { return name_; }

  std::uint64_t packets_forwarded() const { return forwarded_; }
  std::uint64_t packets_received() const { return received_; }

 private:
  struct Nic {
    MacAddr mac;
    Ipv4Addr ip;
    Subnet subnet;
    Link* link;
    int end;
  };

  void on_receive(int nic_index, Packet pkt);
  void deliver_or_forward(Packet pkt);
  void route_and_send(Packet pkt);
  int route(Ipv4Addr dst) const;  // nic index, -1 if no route
  void charge(std::size_t bytes, std::function<void()> then);

  sim::Executor sim_;
  std::string name_;
  std::shared_ptr<ArpRegistry> arp_;
  std::vector<Nic> nics_;
  bool ip_forward_ = false;
  bool down_ = false;
  Ipv4Addr default_gw_{};
  NatEngine nat_;
  ForwardHook forward_hook_;
  TokenBucket* limiter_ = nullptr;
  std::unique_ptr<TcpStack> tcp_;

  sim::Cpu* cpu_ = nullptr;
  sim::Duration per_packet_cost_ = 0;
  double ns_per_byte_ = 0.0;

  std::uint64_t forwarded_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace storm::net
