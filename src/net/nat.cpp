#include "net/nat.hpp"

#include <algorithm>
#include <sstream>

namespace storm::net {

bool NatRule::matches(const Packet& pkt) const {
  if (match_src_ip && *match_src_ip != pkt.ip.src) return false;
  if (match_src_port && *match_src_port != pkt.tcp.src_port) return false;
  if (match_dst_ip && *match_dst_ip != pkt.ip.dst) return false;
  if (match_dst_port && *match_dst_port != pkt.tcp.dst_port) return false;
  return true;
}

std::string NatRule::to_string() const {
  std::ostringstream out;
  out << "match{";
  if (match_src_ip) out << " src=" << storm::net::to_string(*match_src_ip);
  if (match_src_port) out << " sport=" << *match_src_port;
  if (match_dst_ip) out << " dst=" << storm::net::to_string(*match_dst_ip);
  if (match_dst_port) out << " dport=" << *match_dst_port;
  out << " } ->";
  if (snat_ip || snat_port) {
    out << " SNAT";
    if (snat_ip) out << " " << storm::net::to_string(*snat_ip);
    if (snat_port) out << ":" << *snat_port;
  }
  if (dnat_ip || dnat_port) {
    out << " DNAT";
    if (dnat_ip) out << " " << storm::net::to_string(*dnat_ip);
    if (dnat_port) out << ":" << *dnat_port;
  }
  return out.str();
}

std::size_t NatEngine::remove_rules_by_cookie(std::uint64_t cookie,
                                              bool flush_conntrack) {
  const std::size_t removed = std::erase_if(
      rules_, [cookie](const NatRule& r) { return r.cookie == cookie; });
  if (flush_conntrack) flush_conntrack_by_cookie(cookie);
  return removed;
}

void NatEngine::apply(Packet& pkt, const FourTuple& to) {
  pkt.ip.src = to.src.ip;
  pkt.tcp.src_port = to.src.port;
  pkt.ip.dst = to.dst.ip;
  pkt.tcp.dst_port = to.dst.port;
}

bool NatEngine::translate(Packet& pkt) {
  const FourTuple key = pkt.four_tuple();

  if (auto it = forward_.find(key); it != forward_.end()) {
    ++conntrack_hits_;
    if (tel_conntrack_hits_ != nullptr) tel_conntrack_hits_->add();
    apply(pkt, it->second.to);
    return true;
  }
  if (auto it = reverse_.find(key); it != reverse_.end()) {
    ++conntrack_hits_;
    if (tel_conntrack_hits_ != nullptr) tel_conntrack_hits_->add();
    apply(pkt, it->second.to);
    return true;
  }

  for (const NatRule& rule : rules_) {
    if (!rule.matches(pkt)) continue;
    FourTuple translated = key;
    if (rule.snat_ip) translated.src.ip = *rule.snat_ip;
    if (rule.snat_port) translated.src.port = *rule.snat_port;
    if (rule.dnat_ip) translated.dst.ip = *rule.dnat_ip;
    if (rule.dnat_port) translated.dst.port = *rule.dnat_port;
    if (translated == key) return false;  // no-op rule

    ++rule_hits_;
    if (tel_rule_hits_ != nullptr) tel_rule_hits_->add();
    forward_[key] = Conntrack{translated, rule.cookie};
    reverse_[FourTuple{translated.dst, translated.src}] =
        Conntrack{FourTuple{key.dst, key.src}, rule.cookie};
    apply(pkt, translated);
    return true;
  }
  return false;
}

void NatEngine::flush_conntrack() {
  forward_.clear();
  reverse_.clear();
}

std::size_t NatEngine::flush_conntrack_by_cookie(std::uint64_t cookie) {
  const std::size_t dropped = std::erase_if(
      forward_, [cookie](const auto& e) { return e.second.cookie == cookie; });
  std::erase_if(
      reverse_, [cookie](const auto& e) { return e.second.cookie == cookie; });
  return dropped;
}

}  // namespace storm::net
