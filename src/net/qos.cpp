#include "net/qos.hpp"

#include <algorithm>

namespace storm::net {

TokenBucket::TokenBucket(sim::Executor executor,
                         std::uint64_t rate_bytes_per_sec,
                         std::uint64_t burst_bytes)
    : sim_(executor), rate_(rate_bytes_per_sec),
      burst_(std::max<std::uint64_t>(burst_bytes, 1)),
      tokens_(static_cast<double>(std::max<std::uint64_t>(burst_bytes, 1))),
      last_refill_(sim_.now()) {}

void TokenBucket::refill() {
  const sim::Time now = sim_.now();
  if (now > last_refill_) {
    tokens_ += static_cast<double>(now - last_refill_) *
               static_cast<double>(rate_) / 1e9;
    tokens_ = std::min(tokens_, static_cast<double>(burst_));
  }
  last_refill_ = now;
}

sim::Duration TokenBucket::eta(double deficit) const {
  if (deficit <= 0) return 0;
  return static_cast<sim::Duration>(deficit * 1e9 /
                                    static_cast<double>(rate_)) +
         1;
}

void TokenBucket::admit(std::size_t bytes, std::function<void()> release) {
  if (rate_ == 0) {  // unconfigured: pass-through
    release();
    return;
  }
  refill();
  if (queue_.empty() && tokens_ >= 0) {
    // Deficit model: charge even when the balance doesn't fully cover
    // the packet — the debt is repaid out of the refill stream before
    // anything else passes, so a packet larger than the whole burst is
    // paced rather than deadlocked.
    tokens_ -= static_cast<double>(bytes);
    admitted_bytes_ += bytes;
    release();
    return;
  }
  throttled_bytes_ += bytes;
  if (tel_throttled_ != nullptr) {
    tel_throttled_->add(static_cast<std::int64_t>(bytes));
  }
  queued_bytes_ += bytes;
  queue_.push_back(Pending{bytes, std::move(release)});
  if (tel_queue_ != nullptr) {
    tel_queue_->set(static_cast<std::int64_t>(queued_bytes_));
  }
  schedule_drain();
}

void TokenBucket::drain() {
  drain_token_.cancel();  // the fired token would otherwise read as armed
  refill();
  while (!queue_.empty() && tokens_ >= 0) {
    Pending head = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= std::min(head.bytes, queued_bytes_);
    tokens_ -= static_cast<double>(head.bytes);
    admitted_bytes_ += head.bytes;
    head.release();
  }
  if (tel_queue_ != nullptr) {
    tel_queue_->set(static_cast<std::int64_t>(queued_bytes_));
  }
  schedule_drain();
}

void TokenBucket::set_rate(std::uint64_t rate_bytes_per_sec,
                           std::uint64_t burst_bytes) {
  // Settle the accrual earned so far at the *old* rate first — pricing
  // the elapsed window at the new rate would mint (or burn) tokens the
  // configured rates never granted.
  refill();
  rate_ = rate_bytes_per_sec;
  if (burst_bytes != 0) {
    burst_ = std::max<std::uint64_t>(burst_bytes, 1);
  }
  // A balance banked under a larger old cap must not survive above the
  // new one: without this clamp a shrink mid-drain lets a stale surplus
  // burst past the new limit before refill() ever runs again.
  tokens_ = std::min(tokens_, static_cast<double>(burst_));
  if (rate_ == 0) {
    // Unconfigured means pass-through; nothing may stay parked behind a
    // limiter that no longer exists.
    drain_token_.cancel();
    while (!queue_.empty()) {
      Pending head = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= std::min(head.bytes, queued_bytes_);
      admitted_bytes_ += head.bytes;
      head.release();
    }
    if (tel_queue_ != nullptr) {
      tel_queue_->set(static_cast<std::int64_t>(queued_bytes_));
    }
    return;
  }
  // A pending drain's wakeup was priced at the old rate; re-derive it.
  drain_token_.cancel();
  schedule_drain();
}

void TokenBucket::schedule_drain() {
  if (drain_token_.armed() || queue_.empty()) return;
  const double deficit = tokens_ < 0 ? -tokens_ : 0.0;
  sim::Duration wait = eta(deficit);
  if (wait <= 0) wait = 1;
  drain_token_ = sim_.schedule_in(wait, [this] { drain(); });
}

}  // namespace storm::net
