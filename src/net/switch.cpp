#include "net/switch.hpp"

#include <utility>

#include "common/log.hpp"

namespace storm::net {

int L2Switch::attach(Link& link, int end) {
  int port = static_cast<int>(ports_.size());
  ports_.push_back(Port{&link, end});
  link.connect(end, [this, port](Packet pkt) { on_receive(port, pkt); });
  return port;
}

void L2Switch::on_receive(int in_port, Packet pkt) {
  ++packets_;
  // Model the switch's forwarding latency, then run the data path.
  sim_.schedule_in(latency_, [this, in_port, p = std::move(pkt)]() mutable {
    process(in_port, std::move(p));
  });
}

void L2Switch::process(int in_port, Packet pkt) {
  forward_normal(in_port, std::move(pkt));
}

void L2Switch::forward_normal(int in_port, Packet&& pkt) {
  mac_table_[pkt.eth.src.value] = in_port;
  if (!pkt.eth.dst.is_broadcast()) {
    auto it = mac_table_.find(pkt.eth.dst.value);
    if (it != mac_table_.end()) {
      if (it->second != in_port) output(it->second, std::move(pkt));
      return;
    }
  }
  // Flood: copy for every egress port but the last, which takes the
  // original by move. (Packet copies share the payload storage anyway;
  // this avoids the header copy and the refcount churn.)
  int last = -1;
  for (int port = port_count() - 1; port >= 0; --port) {
    if (port != in_port) {
      last = port;
      break;
    }
  }
  for (int port = 0; port < last; ++port) {
    if (port == in_port) continue;
    output(port, Packet(pkt));
  }
  if (last >= 0) output(last, std::move(pkt));
}

void L2Switch::output(int port, Packet&& pkt) {
  if (port < 0 || port >= port_count()) {
    log_warn("switch") << name_ << ": drop to invalid port " << port;
    return;
  }
  Port& p = ports_[static_cast<std::size_t>(port)];
  p.link->send(p.end, std::move(pkt));
}

}  // namespace storm::net
