#include "net/flow_switch.hpp"

#include <algorithm>
#include <sstream>

#include "obs/registry.hpp"

namespace storm::net {

bool FlowMatch::matches(int in_port_arg, const Packet& pkt) const {
  if (in_port && *in_port != in_port_arg) return false;
  if (src_mac && *src_mac != pkt.eth.src) return false;
  if (dst_mac && *dst_mac != pkt.eth.dst) return false;
  if (src_ip && *src_ip != pkt.ip.src) return false;
  if (dst_ip && *dst_ip != pkt.ip.dst) return false;
  if (src_port && *src_port != pkt.tcp.src_port) return false;
  if (dst_port && *dst_port != pkt.tcp.dst_port) return false;
  return true;
}

std::string FlowMatch::to_string() const {
  std::ostringstream out;
  if (in_port) out << "in_port=" << *in_port << ",";
  if (src_mac) out << "dl_src=" << storm::net::to_string(*src_mac) << ",";
  if (dst_mac) out << "dl_dst=" << storm::net::to_string(*dst_mac) << ",";
  if (src_ip) out << "nw_src=" << storm::net::to_string(*src_ip) << ",";
  if (dst_ip) out << "nw_dst=" << storm::net::to_string(*dst_ip) << ",";
  if (src_port) out << "tp_src=" << *src_port << ",";
  if (dst_port) out << "tp_dst=" << *dst_port << ",";
  std::string s = out.str();
  if (!s.empty()) s.pop_back();
  return s.empty() ? "*" : s;
}

void FlowSwitch::add_rule(FlowRule rule) {
  auto pos = std::find_if(rules_.begin(), rules_.end(),
                          [&](const FlowRule& existing) {
                            return existing.priority < rule.priority;
                          });
  rules_.insert(pos, std::move(rule));
  invalidate_cache();
}

std::size_t FlowSwitch::remove_rules_by_cookie(std::uint64_t cookie) {
  auto removed = std::erase_if(
      rules_, [cookie](const FlowRule& r) { return r.cookie == cookie; });
  invalidate_cache();
  return removed;
}

std::size_t FlowSwitch::swap_rules_by_cookie(std::uint64_t cookie,
                                             std::vector<FlowRule> rules) {
  // The simulator is single-threaded and this runs between packets, so
  // remove+insert here really is one indivisible table update. The
  // remove/add helpers each clear the memo wholesale; the revalidation
  // pass afterwards rebuilds every entry against the committed table, so
  // no packet forwarded off the cache can land on a rule the swap
  // removed — and flows the swap never touched keep their fast path
  // (the per-flow exact-match hit rate survives scale-out rebalances).
  auto cache = std::move(flow_cache_);
  std::size_t removed = remove_rules_by_cookie(cookie);
  for (auto& rule : rules) add_rule(std::move(rule));
  flow_cache_ = std::move(cache);
  revalidate_cache();
  return removed;
}

std::size_t FlowSwitch::scan_rules(int in_port, const Packet& pkt) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].match.matches(in_port, pkt)) return i;
  }
  return kNoRule;
}

void FlowSwitch::revalidate_cache() {
  for (auto& [key, idx] : flow_cache_) {
    Packet pkt;
    pkt.eth.src = MacAddr{key.src_mac};
    pkt.eth.dst = MacAddr{key.dst_mac};
    pkt.ip.src = Ipv4Addr{key.src_ip};
    pkt.ip.dst = Ipv4Addr{key.dst_ip};
    pkt.tcp.src_port = key.src_port;
    pkt.tcp.dst_port = key.dst_port;
    idx = scan_rules(key.in_port, pkt);
  }
}

void FlowSwitch::ensure_telemetry() {
  if (telemetry_ready_) return;
  telemetry_ready_ = true;
  obs::Registry& reg = sim_.telemetry();
  tel_total_rule_hits_ = &reg.counter("net.flow.rule_hits");
  tel_rule_hits_ = &reg.counter("net.flow." + name() + ".rule_hits");
  tel_cache_hits_ = &reg.counter("net.flow.cache_hits");
  tel_cache_misses_ = &reg.counter("net.flow.cache_misses");
}

void FlowSwitch::process(int in_port, Packet pkt) {
  ensure_telemetry();
  // Exact-match fast path: the memo stores the winning rule *index* (or
  // kNoRule), and the full action path — rule hit counters included — is
  // re-executed on every hit, so a cached packet is handled identically
  // to one that took the linear scan.
  const FlowCacheKey key{in_port,        pkt.eth.src.value,
                         pkt.eth.dst.value, pkt.ip.src.value,
                         pkt.ip.dst.value,  pkt.tcp.src_port,
                         pkt.tcp.dst_port};
  std::size_t idx = kNoRule;
  auto cached = flow_cache_.find(key);
  if (cached != flow_cache_.end()) {
    ++cache_hits_;
    tel_cache_hits_->add();
    idx = cached->second;
  } else {
    ++cache_misses_;
    tel_cache_misses_->add();
    idx = scan_rules(in_port, pkt);
    flow_cache_.emplace(key, idx);
  }
  if (idx == kNoRule) {
    forward_normal(in_port, std::move(pkt));
    return;
  }
  FlowRule& rule = rules_[idx];
  ++rule.hits;
  tel_total_rule_hits_->add();
  tel_rule_hits_->add();
  for (const auto& action : rule.actions) {
    switch (action.type) {
      case FlowActionType::kSetDstMac:
        pkt.eth.dst = action.mac;
        break;
      case FlowActionType::kSetSrcMac:
        pkt.eth.src = action.mac;
        break;
      case FlowActionType::kOutput:
        output(action.port, std::move(pkt));
        return;
      case FlowActionType::kNormal:
        forward_normal(in_port, std::move(pkt));
        return;
      case FlowActionType::kDrop:
        return;
    }
  }
  // Rules whose action list only rewrites headers continue to NORMAL,
  // matching how StorM's mod_dst_mac steering rules behave in OVS.
  forward_normal(in_port, std::move(pkt));
}

}  // namespace storm::net
