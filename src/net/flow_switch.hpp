// OVS-style flow-table switch: priority-ordered match/action rules
// installed by the StorM SDN controller (paper Fig. 3). Unmatched packets
// fall back to the NORMAL L2 learning pipeline, as in Open vSwitch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/switch.hpp"
#include "obs/metrics.hpp"

namespace storm::net {

/// All fields optional: an empty field is a wildcard.
struct FlowMatch {
  std::optional<int> in_port;
  std::optional<MacAddr> src_mac;
  std::optional<MacAddr> dst_mac;
  std::optional<Ipv4Addr> src_ip;
  std::optional<Ipv4Addr> dst_ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;

  bool matches(int in_port_arg, const Packet& pkt) const;
  std::string to_string() const;
};

enum class FlowActionType {
  kSetDstMac,   // mod_dst_mac — the steering primitive from paper Fig. 3
  kSetSrcMac,
  kOutput,      // emit on an explicit port
  kNormal,      // L2 learning pipeline
  kDrop,
};

struct FlowAction {
  FlowActionType type;
  MacAddr mac{};  // for kSet*Mac
  int port = -1;  // for kOutput

  static FlowAction set_dst_mac(MacAddr mac) {
    return {FlowActionType::kSetDstMac, mac, -1};
  }
  static FlowAction set_src_mac(MacAddr mac) {
    return {FlowActionType::kSetSrcMac, mac, -1};
  }
  static FlowAction output(int port) {
    return {FlowActionType::kOutput, MacAddr{}, port};
  }
  static FlowAction normal() { return {FlowActionType::kNormal, MacAddr{}, -1}; }
  static FlowAction drop() { return {FlowActionType::kDrop, MacAddr{}, -1}; }
};

struct FlowRule {
  int priority = 0;  // higher wins
  FlowMatch match;
  std::vector<FlowAction> actions;
  std::uint64_t cookie = 0;  // controller tag, for targeted removal
  std::uint64_t hits = 0;
};

/// Exact-match fast-path key: every header field a FlowMatch can
/// discriminate on. Two packets with equal keys always select the same
/// rule, so memoizing the scan result per key is exact, wildcards and
/// priorities included.
struct FlowCacheKey {
  int in_port = -1;
  std::uint64_t src_mac = 0;
  std::uint64_t dst_mac = 0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  bool operator==(const FlowCacheKey&) const = default;
};

struct FlowCacheKeyHash {
  std::size_t operator()(const FlowCacheKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
      h ^= h >> 29;
    };
    mix(static_cast<std::uint64_t>(k.in_port));
    mix(k.src_mac);
    mix(k.dst_mac);
    mix(k.src_ip);
    mix(k.dst_ip);
    mix((static_cast<std::uint64_t>(k.src_port) << 16) | k.dst_port);
    return static_cast<std::size_t>(h);
  }
};

class FlowSwitch : public L2Switch {
 public:
  using L2Switch::L2Switch;

  /// Insert a rule; rules are kept sorted by descending priority
  /// (stable: earlier-installed wins ties).
  void add_rule(FlowRule rule);

  /// Remove all rules carrying `cookie`; returns how many were removed.
  std::size_t remove_rules_by_cookie(std::uint64_t cookie);

  /// Atomically replace every rule carrying `cookie` with `rules` (an
  /// OVS bundle/bundle-commit): no packet ever sees the table between
  /// removal and reinstall, which is what makes failover rule swaps safe
  /// under live traffic. The exact-match cache is revalidated — not
  /// dropped — in the same indivisible update: every memoized key is
  /// re-scanned against the post-swap table before the next packet, so a
  /// cached entry can neither steer into a removed replica nor cost the
  /// unaffected flows their fast path. Returns the number of rules
  /// removed.
  std::size_t swap_rules_by_cookie(std::uint64_t cookie,
                                   std::vector<FlowRule> rules);

  std::size_t rule_count() const { return rules_.size(); }
  const std::vector<FlowRule>& rules() const { return rules_; }

  /// Fast-path statistics (exported as net.flow.cache_{hits,misses}).
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  std::size_t cache_entries() const { return flow_cache_.size(); }

 protected:
  void process(int in_port, Packet pkt) override;

 private:
  void ensure_telemetry();
  /// Any table mutation shifts rule indices and can change which rule any
  /// key selects, so the whole memo is dropped (OVS's megaflow-cache
  /// revalidation collapsed to its safe extreme). Bundle operations use
  /// revalidate_cache() instead, which preserves still-correct entries.
  void invalidate_cache() { flow_cache_.clear(); }
  /// Re-derive every memoized entry against the current table (OVS
  /// revalidator): the cache key carries every header field a FlowMatch
  /// can discriminate on, so recomputing the winning index from a packet
  /// reconstructed off the key is exact. Entries survive with their new
  /// index; hit-rate is untouched by rule swaps.
  void revalidate_cache();
  std::size_t scan_rules(int in_port, const Packet& pkt) const;

  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

  std::vector<FlowRule> rules_;
  // Memoized result of the linear scan: winning rule index, or kNoRule
  // for packets that fall through to NORMAL.
  std::unordered_map<FlowCacheKey, std::size_t, FlowCacheKeyHash>
      flow_cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  // Cached per-switch rule-hit counter ("net.flow.<name>.rule_hits").
  bool telemetry_ready_ = false;
  obs::Counter* tel_rule_hits_ = nullptr;
  obs::Counter* tel_total_rule_hits_ = nullptr;
  obs::Counter* tel_cache_hits_ = nullptr;
  obs::Counter* tel_cache_misses_ = nullptr;
};

}  // namespace storm::net
