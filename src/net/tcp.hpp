// TCP-lite: a connection-oriented, windowed, in-order byte stream over the
// simulated fabric.
//
// Modeled faithfully enough for StorM's purposes:
//   * three-way handshake, FIN close, RST abort,
//   * MSS segmentation,
//   * sliding sender window = min(local cap, peer-advertised window),
//   * cumulative ACKs generated immediately on data receipt,
//   * loss recovery: retransmission timeout with exponential backoff,
//     go-back-N resend, fast retransmit on three duplicate ACKs,
//   * checksum-based rejection of corrupted segments (see tcp_checksum).
// The sender window is what makes the paper's active-relay result emerge:
// a relay that terminates TCP and ACKs locally collapses the ACK RTT from
// the whole VM->gateway->MBs->gateway->target path to a single hop, so the
// source never stalls on the middle-box's processing or downstream hops.
//
// Loss, corruption, duplication and reordering are injected by the fault
// subsystem (sim::FaultPlan consulted per packet by net::Link); a segment
// that keeps failing retransmission eventually fails the connection with
// kConnectionFailed, which is how node-down blackholes become visible to
// the iSCSI layer. SACK is not modeled — go-back-N is enough at the loss
// rates the chaos tests inject.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/buf.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace storm::net {

class NetNode;
class TcpStack;

inline constexpr std::size_t kTcpMss = 1460;
inline constexpr std::uint32_t kDefaultWindow = 64 * 1024;

// Retransmission timing. The initial RTO is deliberately generous (the
// simulated fabric has sub-millisecond RTTs) so spurious retransmission
// never happens on a clean path; backoff doubles up to the cap, then the
// connection is declared dead after kTcpMaxRetries consecutive timeouts.
inline constexpr sim::Duration kTcpInitialRto = sim::milliseconds(200);
inline constexpr sim::Duration kTcpMaxRto = sim::seconds(10);
inline constexpr unsigned kTcpMaxRetries = 8;
// Consecutive timeouts after which the stack reports the connection as
// stalled (see TcpStack::set_on_stall) — early enough that a health
// manager can react long before the connection is declared dead.
inline constexpr unsigned kTcpStallRetries = 3;

class TcpConnection {
 public:
  using DataCallback = std::function<void(Buf)>;
  using EstablishedCallback = std::function<void()>;
  using ClosedCallback = std::function<void(Status)>;

  enum class State {
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
    kClosed,
  };

  ~TcpConnection() {
    cancel_rto();
    persist_token_.cancel();
  }

  /// Queue bytes for transmission. No-op after close()/abort(). The Buf
  /// is adopted by reference — no copy until (and unless) a segment
  /// straddles a chunk boundary.
  void send(Buf data);
  void send(Bytes data) { send(Buf(std::move(data))); }
  /// Queue a chunked wire message; all chunks are enqueued before the
  /// send window is pumped, so segmentation on the wire is identical to
  /// sending the flattened message.
  void send(BufChain chunks);

  /// Register the in-order data sink. Bytes arriving before registration
  /// are buffered and flushed on registration.
  void set_on_data(DataCallback cb);

  /// Fires once when the connection ends: OK for graceful FIN, an error
  /// status for RST, local abort or retransmission timeout.
  void set_on_closed(ClosedCallback cb) { on_closed_ = std::move(cb); }

  /// Fires whenever the peer acknowledges new bytes (bytes_acked()
  /// advanced). Used by the active relay to trim its NVRAM journal.
  void set_on_ack(std::function<void()> cb) { on_ack_ = std::move(cb); }

  /// Graceful close: FIN goes out after the send buffer drains.
  void close();

  /// Immediate RST teardown.
  void abort();

  State state() const { return state_; }
  SocketAddr local() const { return local_; }
  SocketAddr remote() const { return remote_; }
  FourTuple four_tuple() const { return FourTuple{local_, remote_}; }

  /// Cap on un-ACKed bytes in flight (sender side).
  void set_send_window(std::uint32_t bytes) { send_window_cap_ = bytes; }

  // --- receive-side flow control ------------------------------------
  /// Credit-based delivery: bytes handed to the data callback stay
  /// charged against the advertised receive window until the
  /// application releases them with consume(). Off by default, where
  /// delivery itself frees the buffer and the window only closes while
  /// data waits in pending_rx_ for set_on_data.
  void set_credit_based(bool enabled) { credit_based_ = enabled; }

  /// Release receive-buffer credit. When the release reopens a window
  /// that was advertised closed, a window-update ACK goes out
  /// immediately — the peer may be idle in zero-window persist with
  /// nothing in flight to clock an ACK back to it.
  void consume(std::size_t bytes);

  /// Receive window currently advertised to the peer.
  std::uint32_t advertised_window() const {
    return rcv_buffered_ >= recv_window_
               ? 0
               : recv_window_ - static_cast<std::uint32_t>(rcv_buffered_);
  }
  /// Delivered-or-pending bytes not yet released with consume().
  std::size_t recv_buffered() const { return rcv_buffered_; }
  /// One-byte window probes sent while the peer's window was closed.
  std::uint64_t zero_window_probes() const { return zero_window_probes_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t retransmits() const { return retransmits_; }

  /// Payload bytes the peer has cumulatively acknowledged (the SYN's
  /// sequence slot is excluded). The active relay trims its NVRAM journal
  /// against this watermark.
  std::uint64_t bytes_acked() const {
    return snd_una_ > 0 ? snd_una_ - 1 : 0;
  }
  /// Bytes queued locally and not yet acknowledged (sent or unsent).
  std::size_t send_backlog() const { return send_size_; }
  std::uint64_t unacked() const { return snd_nxt_ - snd_una_; }

 private:
  friend class TcpStack;

  TcpConnection(TcpStack& stack, SocketAddr local, SocketAddr remote,
                bool initiator, std::uint32_t window);

  void handle_segment(const Packet& pkt);
  void pump();
  void emit(std::uint8_t flags, Buf payload, std::uint64_t seq);
  /// View of send-buffer bytes [offset, offset+len) relative to snd_una_.
  /// O(1) zero-copy slice when the range lies within one chunk; a counted
  /// gather copy when a segment straddles chunk boundaries.
  Buf slice_send(std::size_t offset, std::size_t len) const;
  void send_ack();
  void send_syn() { emit(kTcpSyn, {}, 0); }
  void send_synack() { emit(kTcpSyn | kTcpAck, {}, 0); }
  void enter_closed(Status status);

  // Loss recovery.
  void arm_rto();
  void cancel_rto() { rto_token_.cancel(); }
  void restart_rto();
  void on_rto();
  void rewind_and_resend();

  // Zero-window persist (sender side).
  void maybe_arm_persist();
  void on_persist();

  TcpStack& stack_;
  SocketAddr local_;
  SocketAddr remote_;
  State state_;

  // Sender state. send_chunks_ holds every payload byte from snd_una_ on
  // — both unsent bytes and sent-but-unacknowledged bytes (the
  // retransmission buffer); the sent prefix has length snd_nxt_ - snd_una_.
  // The buffer is an offset-indexed deque of refcounted chunks:
  // chunk_head_ bytes of the front chunk are already acknowledged, so an
  // ACK trim advances chunk_head_ / pops whole chunks — amortized O(1),
  // no memmove — and segmentation slices views out of the chunks.
  std::uint64_t snd_una_ = 0;  // oldest unacknowledged
  std::uint64_t snd_nxt_ = 0;  // next to send
  std::deque<Buf> send_chunks_;
  std::size_t chunk_head_ = 0;  // acked bytes of send_chunks_.front()
  std::size_t send_size_ = 0;   // unacked bytes buffered, across chunks
  std::uint32_t send_window_cap_;
  std::uint32_t peer_window_;
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  // Retransmission state.
  std::uint64_t max_seq_sent_ = 0;  // highest seq ever emitted (new data)
  int dup_acks_ = 0;
  // Fast-retransmit recovery point: no further dup-ACK-triggered resends
  // until the cumulative ACK passes it. Without this, every retransmitted
  // window spawns a fresh burst of duplicate ACKs which each trigger
  // another full-window resend — an amplification loop that melts the
  // link under loss + reordering (go-back-N's classic failure mode).
  std::uint64_t fast_recovery_until_ = 0;
  sim::Duration rto_ = kTcpInitialRto;
  unsigned retries_ = 0;
  sim::CancelToken rto_token_;
  std::uint64_t retransmits_ = 0;

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  std::uint32_t recv_window_;
  std::size_t rcv_buffered_ = 0;  // delivered/pending, not yet consumed
  // Highest receive-window right edge ever advertised. In-order payload
  // beyond it was never permitted by any ACK we sent, so those bytes
  // are trimmed un-ACKed: a sender that ignores our window cannot
  // overrun the receive buffer, and pending_rx_ stays bounded by
  // recv_window_.
  std::uint64_t rcv_window_edge_ = 0;
  bool advertised_closed_ = false;  // last emitted window was zero
  bool credit_based_ = false;
  std::vector<Buf> pending_rx_;  // buffered until set_on_data

  // Zero-window persist: when the peer closes its window with data
  // still queued here and nothing in flight, probe with one byte on a
  // backed-off timer so a lost window update cannot deadlock the
  // connection. Probes never touch retries_ — a flow-controlled peer is
  // alive, not dead.
  sim::CancelToken persist_token_;
  sim::Duration persist_backoff_ = kTcpInitialRto;
  bool window_stalled_ = false;  // one window_stalls count per episode
  std::uint64_t zero_window_probes_ = 0;

  DataCallback on_data_;
  EstablishedCallback on_established_;
  ClosedCallback on_closed_;
  std::function<void()> on_ack_;
  // Listener callback held until the handshake completes.
  std::function<void(TcpConnection&)> accept_pending_;

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;

  // RTT sampling, Karn's algorithm: one probe in flight at a time, the
  // sample discarded if any retransmission happens before the probe's
  // target is acknowledged (a retransmitted segment's ACK is ambiguous).
  bool rtt_probe_armed_ = false;
  std::uint64_t rtt_probe_seq_ = 0;
  sim::Time rtt_probe_sent_ = 0;
};

class TcpStack {
 public:
  using AcceptCallback = std::function<void(TcpConnection&)>;
  /// Stall report: a connection has hit `retries` consecutive
  /// retransmission timeouts without forward progress. Fired once at
  /// kTcpStallRetries and again when the connection is declared dead at
  /// kTcpMaxRetries. The callback runs inside TCP timer processing and
  /// must not destroy connections directly — defer via Simulator::post.
  using StallCallback = std::function<void(const FourTuple&, unsigned)>;

  explicit TcpStack(NetNode& node) : node_(node) {}

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Register a listener; each established inbound connection is handed to
  /// `on_accept` (fired after the three-way handshake completes).
  void listen(std::uint16_t port, AcceptCallback on_accept);
  void stop_listening(std::uint16_t port) { listeners_.erase(port); }

  /// Open a connection to `remote`. `on_established` fires when the
  /// handshake completes; `on_failed` on RST during connect.
  TcpConnection& connect(SocketAddr remote,
                         TcpConnection::EstablishedCallback on_established,
                         std::uint16_t local_port = 0);

  /// Demux an inbound segment (called by NetNode).
  void handle_segment(Packet pkt);

  /// Power-off semantics: destroy every connection and listener without
  /// firing callbacks or emitting RSTs — a crashed node cannot say
  /// goodbye. Peers discover the loss via retransmission timeout or via
  /// the RSTs this stack sends for unknown segments after restart.
  void reset();

  /// Register the stall observer (StorM's chain health manager uses this
  /// as its exhausted-backoff failure signal).
  void set_on_stall(StallCallback cb) { on_stall_ = std::move(cb); }

  /// Default advertised/receive and send window for new connections.
  void set_default_window(std::uint32_t bytes) { default_window_ = bytes; }
  std::uint32_t default_window() const { return default_window_; }

  NetNode& node() { return node_; }

  std::uint16_t allocate_ephemeral_port() { return next_ephemeral_++; }

  /// The source port of the most recently initiated outbound connection.
  /// StorM's connection attribution patches the iSCSI login path to report
  /// this (paper: "modified the iSCSI Login Session code to expose TCP
  /// connection information").
  std::uint16_t last_connect_port() const { return last_connect_port_; }

  /// Segments discarded because their checksum didn't match (in-flight
  /// corruption injected by the fault subsystem).
  std::uint64_t checksum_drops() const { return checksum_drops_; }
  /// Total segments retransmitted by connections of this stack.
  std::uint64_t retransmits() const { return retransmits_; }
  /// Send-side stall episodes: a connection entered zero-window persist.
  std::uint64_t window_stalls() const { return window_stalls_; }
  /// In-order payload bytes dropped (un-ACKed) for landing beyond the
  /// advertised receive-window edge.
  std::uint64_t window_overrun_drops() const {
    return window_overrun_drops_;
  }

 private:
  friend class TcpConnection;

  void transmit(Packet pkt);
  void ensure_telemetry();
  void note_window_stall();
  void note_zero_window_probe();
  void note_window_overrun(std::size_t bytes);

  NetNode& node_;
  std::map<FourTuple, std::unique_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, AcceptCallback> listeners_;
  StallCallback on_stall_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint16_t last_connect_port_ = 0;
  std::uint32_t default_window_ = kDefaultWindow;
  std::uint64_t checksum_drops_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t window_overrun_drops_ = 0;
  // Cached cluster-wide tcp.* metrics (stable registry addresses).
  bool telemetry_ready_ = false;
  obs::Counter* tel_segments_tx_ = nullptr;
  obs::Counter* tel_segments_rx_ = nullptr;
  obs::Counter* tel_checksum_drops_ = nullptr;
  obs::Counter* tel_retransmits_ = nullptr;
  obs::Counter* tel_fast_retransmits_ = nullptr;
  obs::Counter* tel_rto_fired_ = nullptr;
  obs::Counter* tel_window_stalls_ = nullptr;
  obs::Counter* tel_zero_window_probes_ = nullptr;
  obs::Counter* tel_window_overrun_drops_ = nullptr;
  obs::Histogram* tel_rtt_ = nullptr;
};

}  // namespace storm::net
