#include "net/addr.hpp"

#include <cstdio>
#include <stdexcept>

namespace storm::net {

std::string to_string(MacAddr mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((mac.value >> 40) & 0xFF),
                static_cast<unsigned>((mac.value >> 32) & 0xFF),
                static_cast<unsigned>((mac.value >> 24) & 0xFF),
                static_cast<unsigned>((mac.value >> 16) & 0xFF),
                static_cast<unsigned>((mac.value >> 8) & 0xFF),
                static_cast<unsigned>(mac.value & 0xFF));
  return buf;
}

Ipv4Addr Ipv4Addr::from_string(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("bad IPv4 literal: " + dotted);
  }
  return Ipv4Addr{(a << 24) | (b << 16) | (c << 8) | d};
}

std::string to_string(Ipv4Addr ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip.value >> 24) & 0xFF,
                (ip.value >> 16) & 0xFF, (ip.value >> 8) & 0xFF,
                ip.value & 0xFF);
  return buf;
}

std::string to_string(SocketAddr addr) {
  return to_string(addr.ip) + ":" + std::to_string(addr.port);
}

std::string to_string(const FourTuple& tuple) {
  return to_string(tuple.src) + "->" + to_string(tuple.dst);
}

}  // namespace storm::net
