// Packet model: Ethernet/IPv4/TCP headers plus a real payload. The fabric
// passes structured packets for speed, but the codec (serialize/parse) is
// real and round-trip tested — wire size is always computed from it.
#pragma once

#include <cstdint>
#include <string>

#include "common/buf.hpp"
#include "common/bytes.hpp"
#include "net/addr.hpp"

namespace storm::net {

enum class EtherType : std::uint16_t { kIpv4 = 0x0800 };

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  EtherType type = EtherType::kIpv4;

  static constexpr std::size_t kWireSize = 14;
};

enum class IpProto : std::uint8_t { kTcp = 6 };

struct Ipv4Header {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kTcp;
  std::uint8_t ttl = 64;

  static constexpr std::size_t kWireSize = 20;
};

// TCP flags (combinable).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  // seq/ack are 64-bit in this simulation (the codec writes them as u64)
  // so multi-gigabyte benchmark transfers need no 32-bit wraparound logic.
  // The *modeled* wire size stays at the canonical 20 bytes.
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;  // receive window in bytes (no scaling games)
  // Segment checksum (CRC-based, see tcp_checksum). Covers only fields NAT
  // never rewrites — seq/ack/flags/window/payload — so address and port
  // translation doesn't have to recompute it (and therefore can't mask
  // in-flight corruption).
  std::uint32_t checksum = 0;

  static constexpr std::size_t kWireSize = 20;       // timing model
  static constexpr std::size_t kCodecSize = 32;      // serialized bytes
};

struct Packet {
  EthernetHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;
  // Refcounted view: copying a Packet (switch flood, link duplication,
  // retransmit queues) shares the payload bytes instead of cloning them.
  Buf payload;

  std::size_t wire_size() const {
    return EthernetHeader::kWireSize + Ipv4Header::kWireSize +
           TcpHeader::kWireSize + payload.size();
  }

  /// Exact serialized size (the codec's TCP header is wider than the
  /// modeled wire size; see TcpHeader::kCodecSize).
  std::size_t codec_size() const {
    return EthernetHeader::kWireSize + Ipv4Header::kWireSize +
           TcpHeader::kCodecSize + payload.size();
  }

  FourTuple four_tuple() const {
    return FourTuple{{ip.src, tcp.src_port}, {ip.dst, tcp.dst_port}};
  }

  std::string summary() const;
};

/// Wire codec (big-endian network order). parse() throws
/// std::out_of_range on truncated buffers.
Bytes serialize(const Packet& pkt);
Packet parse_packet(std::span<const std::uint8_t> wire);

/// Checksum over the NAT-invariant TCP fields (seq, ack, flags, window)
/// and the payload. Computed by TcpStack::transmit, validated on receive;
/// any middle-box that rewrites the payload must recompute it.
std::uint32_t tcp_checksum(const Packet& pkt);

}  // namespace storm::net
