// Packet model: Ethernet/IPv4/TCP headers plus a real payload. The fabric
// passes structured packets for speed, but the codec (serialize/parse) is
// real and round-trip tested — wire size is always computed from it.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "net/addr.hpp"

namespace storm::net {

enum class EtherType : std::uint16_t { kIpv4 = 0x0800 };

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  EtherType type = EtherType::kIpv4;

  static constexpr std::size_t kWireSize = 14;
};

enum class IpProto : std::uint8_t { kTcp = 6 };

struct Ipv4Header {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kTcp;
  std::uint8_t ttl = 64;

  static constexpr std::size_t kWireSize = 20;
};

// TCP flags (combinable).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  // seq/ack are 64-bit in this simulation (the codec writes them as u64)
  // so multi-gigabyte benchmark transfers need no 32-bit wraparound logic.
  // The *modeled* wire size stays at the canonical 20 bytes.
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;  // receive window in bytes (no scaling games)

  static constexpr std::size_t kWireSize = 20;       // timing model
  static constexpr std::size_t kCodecSize = 30;      // serialized bytes
};

struct Packet {
  EthernetHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;
  Bytes payload;

  std::size_t wire_size() const {
    return EthernetHeader::kWireSize + Ipv4Header::kWireSize +
           TcpHeader::kWireSize + payload.size();
  }

  FourTuple four_tuple() const {
    return FourTuple{{ip.src, tcp.src_port}, {ip.dst, tcp.dst_port}};
  }

  std::string summary() const;
};

/// Wire codec (big-endian network order). parse() throws
/// std::out_of_range on truncated buffers.
Bytes serialize(const Packet& pkt);
Packet parse_packet(std::span<const std::uint8_t> wire);

}  // namespace storm::net
