#include "iscsi/pdu.hpp"

#include <sstream>

#include "common/hash.hpp"

namespace storm::iscsi {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kNopOut: return "NOP-Out";
    case Opcode::kScsiCommand: return "SCSI-Command";
    case Opcode::kLoginRequest: return "Login-Request";
    case Opcode::kDataOut: return "Data-Out";
    case Opcode::kLogoutRequest: return "Logout-Request";
    case Opcode::kNopIn: return "NOP-In";
    case Opcode::kScsiResponse: return "SCSI-Response";
    case Opcode::kLoginResponse: return "Login-Response";
    case Opcode::kDataIn: return "Data-In";
    case Opcode::kLogoutResponse: return "Logout-Response";
    case Opcode::kReject: return "Reject";
  }
  return "Unknown";
}

std::string Pdu::summary() const {
  std::ostringstream out;
  out << to_string(opcode) << " tag=" << task_tag;
  if (opcode == Opcode::kScsiCommand) {
    out << (is_read() ? " READ" : " WRITE") << " lba=" << lba
        << " len=" << transfer_length;
  }
  if (!data.empty()) out << " data=" << data.size() << "B@" << data_offset;
  if (is_final()) out << " F";
  return out.str();
}

// Body layout: 4 one-byte fields, task_tag(4), lba(8), transfer_length(4),
// data_offset(4), u16-prefixed text, data_size(4), data, data_digest(4),
// body crc(4) = 38 fixed bytes + text + data.
std::size_t serialized_body_size(const Pdu& pdu) {
  return 38 + pdu.text.size() + pdu.data.size();
}

std::size_t serialized_size(const Pdu& pdu) {
  return 4 + serialized_body_size(pdu);
}

namespace {

/// Everything before the data segment: length prefix, fixed header
/// fields, text, and the data-size field.
void write_head(ByteWriter& w, const Pdu& pdu, std::size_t body_len) {
  w.u32(static_cast<std::uint32_t>(body_len));
  w.u8(static_cast<std::uint8_t>(pdu.opcode));
  w.u8(pdu.flags);
  w.u8(pdu.status);
  w.u8(0);  // reserved
  w.u32(pdu.task_tag);
  w.u64(pdu.lba);
  w.u32(pdu.transfer_length);
  w.u32(pdu.data_offset);
  w.str(pdu.text);
  w.u32(static_cast<std::uint32_t>(pdu.data.size()));
}

}  // namespace

Bytes serialize(const Pdu& pdu) {
  const std::size_t body_len = serialized_body_size(pdu);
  Bytes out;
  out.reserve(4 + body_len);
  ByteWriter w(out);
  write_head(w, pdu, body_len);
  w.raw(pdu.data);
  bufstats::add_bytes_copied(pdu.data.size());
  w.u32(pdu.data.empty() ? 0 : crc32(pdu.data));
  // Trailing digest over the whole body (headers + text + data), so any
  // single bit flip anywhere in the PDU is detected at parse time — the
  // data_digest above only covers the data segment.
  w.u32(crc32(std::span<const std::uint8_t>(out).subspan(4)));
  return out;
}

BufChain serialize_chunks(const Pdu& pdu) {
  const std::size_t body_len = serialized_body_size(pdu);
  Bytes head;
  head.reserve(4 + body_len - pdu.data.size() - 8);
  ByteWriter w(head);
  write_head(w, pdu, body_len);

  // The trailing whole-body digest is computed incrementally across the
  // chunks — the data segment is digested through its refcounted view,
  // never copied.
  Crc32 body_crc;
  body_crc.update(std::span<const std::uint8_t>(head).subspan(4));
  body_crc.update(pdu.data);

  Bytes tail;
  tail.reserve(8);
  ByteWriter t(tail);
  t.u32(pdu.data.empty() ? 0 : crc32(pdu.data));
  body_crc.update(tail);  // the data_digest field is inside the body crc
  t.u32(body_crc.final());

  BufChain chain;
  chain.reserve(3);
  chain.push_back(Buf(std::move(head)));
  if (!pdu.data.empty()) chain.push_back(pdu.data);
  chain.push_back(Buf(std::move(tail)));
  return chain;
}

Result<Pdu> parse_pdu(Buf body) {
  try {
    if (body.size() < 4) {
      return error(ErrorCode::kParseError, "truncated PDU body");
    }
    const std::span<const std::uint8_t> all = body.span();
    // Verify the trailing whole-body digest before trusting any field.
    std::span<const std::uint8_t> inner = all.first(all.size() - 4);
    {
      ByteReader tail(all.subspan(all.size() - 4));
      if (tail.u32() != crc32(inner)) {
        return error(ErrorCode::kParseError, "pdu digest mismatch");
      }
    }
    ByteReader r(inner);
    Pdu pdu;
    pdu.opcode = static_cast<Opcode>(r.u8());
    pdu.flags = r.u8();
    pdu.status = r.u8();
    r.skip(1);
    pdu.task_tag = r.u32();
    pdu.lba = r.u64();
    pdu.transfer_length = r.u32();
    pdu.data_offset = r.u32();
    pdu.text = r.str();
    std::uint32_t data_len = r.u32();
    const std::size_t data_off = r.position();
    r.skip(data_len);
    // Zero copy: the data segment is a slice of the body the caller
    // already holds; whoever mutates it later goes through COW.
    pdu.data = body.slice(data_off, data_len);
    pdu.data_digest = r.u32();
    if (r.remaining() != 0) {
      return error(ErrorCode::kParseError, "trailing bytes in PDU");
    }
    std::uint32_t expect = pdu.data.empty() ? 0 : crc32(pdu.data);
    if (pdu.data_digest != expect) {
      return error(ErrorCode::kParseError, "data digest mismatch");
    }
    return pdu;
  } catch (const std::out_of_range&) {
    return error(ErrorCode::kParseError, "truncated PDU body");
  }
}

Result<Pdu> parse_pdu(std::span<const std::uint8_t> body) {
  return parse_pdu(Buf::copy(body));
}

std::uint32_t StreamParser::peek_u32() const {
  std::uint32_t v = 0;
  std::size_t idx = 0;
  std::size_t off = head_;
  for (int i = 0; i < 4; ++i) {
    while (off >= chunks_[idx].size()) {
      off = 0;
      ++idx;
    }
    v = (v << 8) | chunks_[idx][off];
    ++off;
  }
  return v;
}

Buf StreamParser::gather(std::size_t skip, std::size_t n) const {
  if (n == 0) return Buf{};
  std::size_t idx = 0;
  std::size_t off = head_ + skip;
  while (off >= chunks_[idx].size()) {
    off -= chunks_[idx].size();
    ++idx;
  }
  if (chunks_[idx].size() - off >= n) {
    // Whole range inside one chunk: zero-copy slice.
    return chunks_[idx].slice(off, n);
  }
  Bytes out;
  out.reserve(n);
  std::size_t need = n;
  for (; need > 0; ++idx, off = 0) {
    const Buf& chunk = chunks_[idx];
    const std::size_t take = std::min(need, chunk.size() - off);
    out.insert(out.end(), chunk.begin() + off, chunk.begin() + off + take);
    need -= take;
  }
  bufstats::add_bytes_copied(n);
  return Buf(std::move(out));
}

void StreamParser::consume(std::size_t n) {
  pending_ -= n;
  while (n > 0) {
    const std::size_t avail = chunks_.front().size() - head_;
    if (n >= avail) {
      n -= avail;
      chunks_.pop_front();
      head_ = 0;
    } else {
      head_ += n;
      n = 0;
    }
  }
}

Status StreamParser::feed(Buf bytes, std::vector<Pdu>& out) {
  if (!bytes.empty()) {
    pending_ += bytes.size();
    chunks_.push_back(std::move(bytes));
  }
  while (pending_ >= 4) {
    const std::uint32_t body_len = peek_u32();
    if (pending_ - 4 < body_len) break;
    auto result = parse_pdu(gather(4, body_len));
    if (!result.is_ok()) {
      // The malformed PDU stays buffered (as in the contiguous parser);
      // callers abort the connection on error.
      return result.status();
    }
    consume(4 + body_len);
    out.push_back(std::move(result).take());
  }
  return Status::ok();
}

Pdu make_login_request(const std::string& iqn) {
  Pdu pdu;
  pdu.opcode = Opcode::kLoginRequest;
  pdu.text = "iqn=" + iqn;
  pdu.flags = kFlagFinal;
  return pdu;
}

Pdu make_login_response(std::uint8_t status) {
  Pdu pdu;
  pdu.opcode = Opcode::kLoginResponse;
  pdu.status = status;
  pdu.flags = kFlagFinal;
  return pdu;
}

Pdu make_read_command(std::uint32_t task_tag, std::uint64_t lba,
                      std::uint32_t length_bytes) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.flags = kFlagFinal | kFlagRead;
  pdu.task_tag = task_tag;
  pdu.lba = lba;
  pdu.transfer_length = length_bytes;
  return pdu;
}

Pdu make_write_command(std::uint32_t task_tag, std::uint64_t lba,
                       std::uint32_t length_bytes) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.flags = 0;  // data follows in Data-Out PDUs
  pdu.task_tag = task_tag;
  pdu.lba = lba;
  pdu.transfer_length = length_bytes;
  return pdu;
}

Pdu make_data_out(std::uint32_t task_tag, std::uint32_t offset, Buf data,
                  bool final) {
  Pdu pdu;
  pdu.opcode = Opcode::kDataOut;
  pdu.task_tag = task_tag;
  pdu.data_offset = offset;
  pdu.data = std::move(data);
  if (final) pdu.flags |= kFlagFinal;
  return pdu;
}

Pdu make_data_in(std::uint32_t task_tag, std::uint32_t offset, Buf data,
                 bool final) {
  Pdu pdu;
  pdu.opcode = Opcode::kDataIn;
  pdu.task_tag = task_tag;
  pdu.data_offset = offset;
  pdu.data = std::move(data);
  if (final) pdu.flags |= kFlagFinal;
  return pdu;
}

Pdu make_scsi_response(std::uint32_t task_tag, std::uint8_t status) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiResponse;
  pdu.task_tag = task_tag;
  pdu.status = status;
  pdu.flags = kFlagFinal;
  return pdu;
}

}  // namespace storm::iscsi
