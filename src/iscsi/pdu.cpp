#include "iscsi/pdu.hpp"

#include <sstream>

#include "common/hash.hpp"

namespace storm::iscsi {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kNopOut: return "NOP-Out";
    case Opcode::kScsiCommand: return "SCSI-Command";
    case Opcode::kLoginRequest: return "Login-Request";
    case Opcode::kDataOut: return "Data-Out";
    case Opcode::kLogoutRequest: return "Logout-Request";
    case Opcode::kNopIn: return "NOP-In";
    case Opcode::kScsiResponse: return "SCSI-Response";
    case Opcode::kLoginResponse: return "Login-Response";
    case Opcode::kDataIn: return "Data-In";
    case Opcode::kLogoutResponse: return "Logout-Response";
    case Opcode::kReject: return "Reject";
  }
  return "Unknown";
}

std::string Pdu::summary() const {
  std::ostringstream out;
  out << to_string(opcode) << " tag=" << task_tag;
  if (opcode == Opcode::kScsiCommand) {
    out << (is_read() ? " READ" : " WRITE") << " lba=" << lba
        << " len=" << transfer_length;
  }
  if (!data.empty()) out << " data=" << data.size() << "B@" << data_offset;
  if (is_final()) out << " F";
  return out.str();
}

Bytes serialize(const Pdu& pdu) {
  Bytes body;
  ByteWriter w(body);
  w.u8(static_cast<std::uint8_t>(pdu.opcode));
  w.u8(pdu.flags);
  w.u8(pdu.status);
  w.u8(0);  // reserved
  w.u32(pdu.task_tag);
  w.u64(pdu.lba);
  w.u32(pdu.transfer_length);
  w.u32(pdu.data_offset);
  w.str(pdu.text);
  w.u32(static_cast<std::uint32_t>(pdu.data.size()));
  w.raw(pdu.data);
  w.u32(pdu.data.empty() ? 0 : crc32(pdu.data));
  // Trailing digest over the whole body (headers + text + data), so any
  // single bit flip anywhere in the PDU is detected at parse time — the
  // data_digest above only covers the data segment.
  w.u32(crc32(body));

  Bytes framed;
  ByteWriter frame(framed);
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body);
  return framed;
}

Result<Pdu> parse_pdu(std::span<const std::uint8_t> body) {
  try {
    if (body.size() < 4) {
      return error(ErrorCode::kParseError, "truncated PDU body");
    }
    // Verify the trailing whole-body digest before trusting any field.
    std::span<const std::uint8_t> inner = body.first(body.size() - 4);
    {
      ByteReader tail(body.subspan(body.size() - 4));
      if (tail.u32() != crc32(inner)) {
        return error(ErrorCode::kParseError, "pdu digest mismatch");
      }
    }
    ByteReader r(inner);
    Pdu pdu;
    pdu.opcode = static_cast<Opcode>(r.u8());
    pdu.flags = r.u8();
    pdu.status = r.u8();
    r.skip(1);
    pdu.task_tag = r.u32();
    pdu.lba = r.u64();
    pdu.transfer_length = r.u32();
    pdu.data_offset = r.u32();
    pdu.text = r.str();
    std::uint32_t data_len = r.u32();
    pdu.data = r.raw(data_len);
    pdu.data_digest = r.u32();
    if (r.remaining() != 0) {
      return error(ErrorCode::kParseError, "trailing bytes in PDU");
    }
    std::uint32_t expect = pdu.data.empty() ? 0 : crc32(pdu.data);
    if (pdu.data_digest != expect) {
      return error(ErrorCode::kParseError, "data digest mismatch");
    }
    return pdu;
  } catch (const std::out_of_range&) {
    return error(ErrorCode::kParseError, "truncated PDU body");
  }
}

Status StreamParser::feed(std::span<const std::uint8_t> bytes,
                          std::vector<Pdu>& out) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  std::size_t pos = 0;
  while (buffer_.size() - pos >= 4) {
    ByteReader r(std::span<const std::uint8_t>(buffer_.data() + pos, 4));
    std::uint32_t body_len = r.u32();
    if (buffer_.size() - pos - 4 < body_len) break;
    auto result = parse_pdu(std::span<const std::uint8_t>(
        buffer_.data() + pos + 4, body_len));
    if (!result.is_ok()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
      return result.status();
    }
    out.push_back(std::move(result).take());
    pos += 4 + body_len;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return Status::ok();
}

Pdu make_login_request(const std::string& iqn) {
  Pdu pdu;
  pdu.opcode = Opcode::kLoginRequest;
  pdu.text = "iqn=" + iqn;
  pdu.flags = kFlagFinal;
  return pdu;
}

Pdu make_login_response(std::uint8_t status) {
  Pdu pdu;
  pdu.opcode = Opcode::kLoginResponse;
  pdu.status = status;
  pdu.flags = kFlagFinal;
  return pdu;
}

Pdu make_read_command(std::uint32_t task_tag, std::uint64_t lba,
                      std::uint32_t length_bytes) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.flags = kFlagFinal | kFlagRead;
  pdu.task_tag = task_tag;
  pdu.lba = lba;
  pdu.transfer_length = length_bytes;
  return pdu;
}

Pdu make_write_command(std::uint32_t task_tag, std::uint64_t lba,
                       std::uint32_t length_bytes) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.flags = 0;  // data follows in Data-Out PDUs
  pdu.task_tag = task_tag;
  pdu.lba = lba;
  pdu.transfer_length = length_bytes;
  return pdu;
}

Pdu make_data_out(std::uint32_t task_tag, std::uint32_t offset, Bytes data,
                  bool final) {
  Pdu pdu;
  pdu.opcode = Opcode::kDataOut;
  pdu.task_tag = task_tag;
  pdu.data_offset = offset;
  pdu.data = std::move(data);
  if (final) pdu.flags |= kFlagFinal;
  return pdu;
}

Pdu make_data_in(std::uint32_t task_tag, std::uint32_t offset, Bytes data,
                 bool final) {
  Pdu pdu;
  pdu.opcode = Opcode::kDataIn;
  pdu.task_tag = task_tag;
  pdu.data_offset = offset;
  pdu.data = std::move(data);
  if (final) pdu.flags |= kFlagFinal;
  return pdu;
}

Pdu make_scsi_response(std::uint32_t task_tag, std::uint8_t status) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiResponse;
  pdu.task_tag = task_tag;
  pdu.status = status;
  pdu.flags = kFlagFinal;
  return pdu;
}

}  // namespace storm::iscsi
