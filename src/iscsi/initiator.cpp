#include "iscsi/initiator.hpp"

#include <algorithm>

#include "block/block_device.hpp"
#include "common/log.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"

namespace storm::iscsi {

Initiator::Initiator(net::NetNode& node, net::SocketAddr target,
                     std::string iqn, std::uint16_t local_port)
    : node_(node), target_(target), iqn_(std::move(iqn)),
      local_port_(local_port) {}

void Initiator::login(LoginCallback done) {
  login_cb_ = std::move(done);
  dial();
}

obs::SpanId Initiator::begin_command_span(const char* kind, std::uint32_t tag,
                                          std::uint64_t bytes) {
  obs::Registry& reg = node_.executor().telemetry();
  obs::SpanId span = reg.begin_span(kind);
  reg.add_event(span, "issue", bytes);
  // Bind the command's correlation key so every PDU-aware hop downstream
  // (relays, target) can stamp events onto this root span. The source
  // port is preserved along the whole spliced chain, so the key is
  // derivable at every layer.
  if (source_port_ != 0) {
    reg.bind(obs::command_trace_key(source_port_, tag), span);
  }
  return span;
}

void Initiator::end_command_span(obs::SpanId span, std::uint32_t tag,
                                 const char* outcome) {
  if (span == 0) return;
  obs::Registry& reg = node_.executor().telemetry();
  reg.add_event(span, outcome);
  reg.end_span(span);
  reg.unbind(obs::command_trace_key(source_port_, tag));
}

void Initiator::update_outstanding() {
  if (tel_outstanding_ == nullptr) {
    tel_outstanding_ = &node_.executor().telemetry().gauge(
        "iscsi.initiator." + iqn_ + ".outstanding");
  }
  tel_outstanding_->set(static_cast<std::int64_t>(pending_reads_.size() +
                                                  pending_writes_.size()));
}

void Initiator::dial() {
  conn_ = &node_.tcp().connect(target_, [this] {
    send_pdu(make_login_request(iqn_));
  }, local_port_);
  source_port_ = conn_->local().port;
  // Pin the ephemeral port we got: a recovery dial must reuse the exact
  // four-tuple or conntrack-steered NAT paths stop matching the flow.
  local_port_ = source_port_;
  conn_->set_on_data([this](Buf bytes) { on_data(std::move(bytes)); });
  conn_->set_on_closed([this](Status status) { on_closed(status); });
  // Watch the login round-trip too: a recovery dial that connects but
  // never gets a login response (peer restarted again, response lost on a
  // dead path) must not hang the queued commands forever.
  arm_watchdog();
}

void Initiator::reconnect() {
  if (failed_ || logging_out_ || logged_in_) return;
  dial();
}

void Initiator::read(std::uint64_t lba, std::uint32_t sectors,
                     ReadCallback done) {
  if (admission_ == AdmissionMode::kClosed) {
    done(error(ErrorCode::kUnavailable, "session draining"), {});
    return;
  }
  if (admission_ == AdmissionMode::kDeferred) {
    DeferredOp op;
    op.lba = lba;
    op.sectors = sectors;
    op.read_done = std::move(done);
    deferred_.push_back(std::move(op));
    return;
  }
  if (failed_ || logging_out_ || (!logged_in_ && !recovery_.enabled)) {
    done(error(ErrorCode::kFailedPrecondition, "session not established"), {});
    return;
  }
  std::uint32_t tag = next_tag_++;
  std::uint32_t bytes = sectors * block::kSectorSize;
  obs::SpanId span = begin_command_span("cmd.read", tag, bytes);
  pending_reads_[tag] = PendingRead{lba, {}, bytes, std::move(done), span};
  ++reads_;
  node_.executor().telemetry().counter("iscsi.initiator.reads").add();
  update_outstanding();
  // While disconnected (recovery pending) the command just queues; the
  // re-login path re-issues everything outstanding.
  if (logged_in_) {
    send_pdu(make_read_command(tag, lba, bytes));
    arm_watchdog();
  }
}

void Initiator::write(std::uint64_t lba, Bytes data, WriteCallback done) {
  if (admission_ == AdmissionMode::kClosed) {
    done(error(ErrorCode::kUnavailable, "session draining"));
    return;
  }
  if (admission_ == AdmissionMode::kDeferred) {
    DeferredOp op;
    op.is_write = true;
    op.lba = lba;
    op.data = std::move(data);
    op.write_done = std::move(done);
    deferred_.push_back(std::move(op));
    return;
  }
  if (failed_ || logging_out_ || (!logged_in_ && !recovery_.enabled)) {
    done(error(ErrorCode::kFailedPrecondition, "session not established"));
    return;
  }
  if (data.empty() || data.size() % block::kSectorSize != 0) {
    done(error(ErrorCode::kInvalidArgument, "unaligned write"));
    return;
  }
  std::uint32_t tag = next_tag_++;
  obs::SpanId span = begin_command_span("cmd.write", tag, data.size());
  // Wrap once; every segment below is a refcounted slice of this Buf.
  auto [it, inserted] = pending_writes_.emplace(
      tag, PendingWrite{lba, Buf(std::move(data)), std::move(done), span});
  ++writes_;
  node_.executor().telemetry().counter("iscsi.initiator.writes").add();
  update_outstanding();
  if (logged_in_) {
    issue_write(tag, it->second);
    arm_watchdog();
  }
}

void Initiator::issue_write(std::uint32_t tag, const PendingWrite& pending) {
  const Buf& data = pending.data;
  const std::uint32_t total = static_cast<std::uint32_t>(data.size());
  // Command PDU carries the first segment as immediate data; the rest
  // streams as Data-Out PDUs. Every segment is a zero-copy slice of the
  // pending write's buffer (re-issue after recovery re-slices it).
  std::uint32_t first = std::min(kMaxDataSegment, total);
  Pdu cmd = make_write_command(tag, pending.lba, total);
  cmd.data = data.slice(0, first);
  if (first == total) cmd.flags |= kFlagFinal;
  send_pdu(cmd);
  std::uint32_t offset = first;
  while (offset < total) {
    std::uint32_t n = std::min(kMaxDataSegment, total - offset);
    send_pdu(make_data_out(tag, offset, data.slice(offset, n),
                           offset + n == total));
    offset += n;
  }
}

void Initiator::reissue_pending() {
  // Re-issue in original tag order so the replayed command stream matches
  // what the journal-replaying relay and the target expect.
  std::vector<std::uint32_t> tags;
  tags.reserve(pending_reads_.size() + pending_writes_.size());
  for (const auto& [tag, pending] : pending_reads_) tags.push_back(tag);
  for (const auto& [tag, pending] : pending_writes_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  for (std::uint32_t tag : tags) {
    if (auto it = pending_reads_.find(tag); it != pending_reads_.end()) {
      it->second.data.clear();  // partial Data-In from before the drop
      send_pdu(make_read_command(tag, it->second.lba, it->second.expected));
    } else if (auto wit = pending_writes_.find(tag);
               wit != pending_writes_.end()) {
      issue_write(tag, wit->second);
    }
  }
}

void Initiator::logout() {
  logging_out_ = true;  // a deliberate teardown must not trigger recovery
  if (conn_ == nullptr || failed_) return;
  Pdu pdu;
  pdu.opcode = Opcode::kLogoutRequest;
  send_pdu(pdu);
}

void Initiator::arm_watchdog() {
  watchdog_.cancel();
  if (!recovery_.enabled || logging_out_ || failed_) return;
  watchdog_ = node_.executor().schedule_in(
      recovery_.response_timeout, [this] { on_watchdog(); });
}

void Initiator::on_watchdog() {
  if (pending_reads_.empty() && pending_writes_.empty()) return;
  if (conn_ == nullptr) return;
  log_info("iscsi-init") << iqn_ << ": command timeout after "
                         << recovery_.response_timeout
                         << "ns; dropping session for recovery";
  conn_->abort();  // enter on_closed -> recovery reconnect path
}

void Initiator::on_data(Buf bytes) {
  std::vector<Pdu> pdus;
  Status status = parser_.feed(std::move(bytes), pdus);
  if (!status.is_ok()) {
    log_warn("iscsi-init") << "protocol error: " << status.to_string();
    conn_->abort();
    return;
  }
  for (auto& pdu : pdus) handle_pdu(std::move(pdu));
  // Any inbound PDU is progress: push the command watchdog out, or stop
  // it entirely once nothing is outstanding.
  if (pending_reads_.empty() && pending_writes_.empty()) {
    watchdog_.cancel();
  } else {
    arm_watchdog();
  }
}

void Initiator::handle_pdu(Pdu pdu) {
  switch (pdu.opcode) {
    case Opcode::kLoginResponse: {
      logged_in_ = pdu.status == kStatusGood;
      if (logged_in_) {
        attempts_ = 0;
        if (recovering_) {
          recovering_ = false;
          ++recoveries_;
          node_.executor().telemetry().counter("iscsi.initiator.recoveries")
              .add();
          node_.executor().telemetry().record_event(
              "iscsi " + iqn_ + ": session recovered");
          log_info("iscsi-init") << iqn_ << ": session recovered (port="
                                 << source_port_ << ")";
        }
        reissue_pending();
      }
      if (login_cb_) {
        auto cb = std::move(login_cb_);
        login_cb_ = nullptr;
        cb(logged_in_ ? Status::ok()
                      : error(ErrorCode::kPermissionDenied, "login rejected"));
      }
      return;
    }
    case Opcode::kDataIn: {
      auto it = pending_reads_.find(pdu.task_tag);
      if (it == pending_reads_.end()) return;
      PendingRead& pending = it->second;
      if (pdu.data_offset != pending.data.size()) {
        log_warn("iscsi-init") << "out-of-order Data-In";
        return;
      }
      pdu.data.append_to(pending.data);
      return;
    }
    case Opcode::kScsiResponse: {
      if (auto it = pending_reads_.find(pdu.task_tag);
          it != pending_reads_.end()) {
        PendingRead pending = std::move(it->second);
        pending_reads_.erase(it);
        update_outstanding();
        const bool ok = pdu.status == kStatusGood &&
                        pending.data.size() == pending.expected;
        end_command_span(pending.span, pdu.task_tag,
                         ok ? "complete" : "failed");
        if (ok) {
          pending.done(Status::ok(), std::move(pending.data));
        } else {
          pending.done(error(ErrorCode::kIoError, "read failed"), {});
        }
        return;
      }
      if (auto it = pending_writes_.find(pdu.task_tag);
          it != pending_writes_.end()) {
        PendingWrite pending = std::move(it->second);
        pending_writes_.erase(it);
        update_outstanding();
        const bool ok = pdu.status == kStatusGood;
        end_command_span(pending.span, pdu.task_tag,
                         ok ? "complete" : "failed");
        pending.done(ok ? Status::ok()
                        : error(ErrorCode::kIoError, "write failed"));
        return;
      }
      return;
    }
    case Opcode::kLogoutResponse:
      conn_->close();
      return;
    default:
      return;
  }
}

void Initiator::on_closed(Status status) {
  if (failed_) return;
  logged_in_ = false;
  conn_ = nullptr;
  watchdog_.cancel();
  if (recovery_.enabled && !logging_out_ &&
      attempts_ < recovery_.max_attempts) {
    ++attempts_;
    recovering_ = true;
    parser_ = StreamParser{};  // mid-PDU bytes from the old stream are gone
    node_.executor().telemetry().record_event(
        "iscsi " + iqn_ + ": session dropped (" + status.to_string() + ")");
    log_info("iscsi-init") << iqn_ << ": session dropped ("
                           << status.to_string() << "); reconnect attempt "
                           << attempts_ << "/" << recovery_.max_attempts;
    node_.executor().schedule_in(recovery_.reconnect_delay,
                            [this] { reconnect(); });
    return;
  }
  failed_ = true;
  Status failure = status.is_ok()
                       ? error(ErrorCode::kConnectionFailed, "session closed")
                       : status;
  if (login_cb_) {
    auto cb = std::move(login_cb_);
    login_cb_ = nullptr;
    cb(failure);
  }
  // Fail all outstanding commands.
  auto reads = std::move(pending_reads_);
  pending_reads_.clear();
  auto writes = std::move(pending_writes_);
  pending_writes_.clear();
  update_outstanding();
  for (auto& [tag, pending] : reads) {
    end_command_span(pending.span, tag, "failed");
    pending.done(failure, {});
  }
  for (auto& [tag, pending] : writes) {
    end_command_span(pending.span, tag, "failed");
    pending.done(failure);
  }
  if (on_failure_) on_failure_(failure);
}

void Initiator::set_admission_mode(AdmissionMode mode) {
  if (admission_ == mode) return;
  admission_ = mode;
  if (deferred_.empty()) return;
  std::deque<DeferredOp> parked = std::move(deferred_);
  deferred_.clear();
  if (mode == AdmissionMode::kClosed) {
    // A fence outranks an in-flight migration: the parked commands were
    // never issued, so failing them here is exact (nothing half-sent).
    for (DeferredOp& op : parked) {
      Status reason = error(ErrorCode::kUnavailable, "session draining");
      if (op.is_write) {
        op.write_done(reason);
      } else {
        op.read_done(reason, {});
      }
    }
    return;
  }
  // Reopened: issue in arrival order. read()/write() re-check the gate,
  // so a callback that flips the mode again just re-parks the rest.
  for (DeferredOp& op : parked) {
    if (admission_ != AdmissionMode::kOpen) {
      deferred_.push_back(std::move(op));
      continue;
    }
    if (op.is_write) {
      write(op.lba, std::move(op.data), std::move(op.write_done));
    } else {
      read(op.lba, op.sectors, std::move(op.read_done));
    }
  }
}

void Initiator::kick() {
  if (conn_ == nullptr || failed_ || logging_out_) return;
  log_info("iscsi-init") << iqn_ << ": kicked; dropping session for "
                            "immediate re-dial";
  conn_->abort();  // enter on_closed -> recovery reconnect path
}

void Initiator::fail_outstanding(Status reason) {
  watchdog_.cancel();
  auto reads = std::move(pending_reads_);
  pending_reads_.clear();
  auto writes = std::move(pending_writes_);
  pending_writes_.clear();
  update_outstanding();
  for (auto& [tag, pending] : reads) {
    end_command_span(pending.span, tag, "fenced");
    pending.done(reason, {});
  }
  for (auto& [tag, pending] : writes) {
    end_command_span(pending.span, tag, "fenced");
    pending.done(reason);
  }
}

void Initiator::send_pdu(const Pdu& pdu) {
  if (conn_ == nullptr) return;
  // Chunked: the data segment goes to TCP as a reference, not a copy.
  conn_->send(serialize_chunks(pdu));
}

}  // namespace storm::iscsi
