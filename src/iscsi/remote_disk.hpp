// RemoteDisk: BlockDevice adapter over an iSCSI session. This is the
// tenant VM's virtual-disk view — filesystems and workloads issue sector
// I/O here and it travels the (possibly spliced) storage path.
#pragma once

#include "block/block_device.hpp"
#include "iscsi/initiator.hpp"

namespace storm::iscsi {

class RemoteDisk : public block::BlockDevice {
 public:
  /// `sectors` is the volume capacity (known to the control plane at
  /// attach time).
  RemoteDisk(Initiator& initiator, std::uint64_t sectors)
      : initiator_(initiator), sectors_(sectors) {}

  void read(std::uint64_t lba, std::uint32_t count,
            ReadCallback done) override {
    Status status = check_range(lba, count);
    if (!status.is_ok()) {
      done(status, {});
      return;
    }
    initiator_.read(lba, count, std::move(done));
  }

  void write(std::uint64_t lba, Bytes data, WriteCallback done) override {
    Status status = check_range(lba, data.size() / block::kSectorSize);
    if (!status.is_ok()) {
      done(status);
      return;
    }
    initiator_.write(lba, std::move(data), std::move(done));
  }

  std::uint64_t num_sectors() const override { return sectors_; }

  Initiator& initiator() { return initiator_; }

 private:
  Initiator& initiator_;
  std::uint64_t sectors_;
};

}  // namespace storm::iscsi
