// iSCSI initiator: runs on the *compute host* (as in OpenStack — not in
// the tenant VM), one connection per attached volume. Exposes the login
// source port, reproducing the paper's patched "Login Session" code that
// StorM's connection attribution reads (§III-A).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "iscsi/pdu.hpp"
#include "net/tcp.hpp"

namespace storm::iscsi {

class Initiator {
 public:
  using LoginCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, Bytes)>;
  using WriteCallback = std::function<void(Status)>;
  using FailureCallback = std::function<void(Status)>;

  /// `target` is the address the initiator dials. StorM's splicing NAT
  /// may transparently redirect the flow; the initiator neither knows nor
  /// cares — exactly the transparency property the paper claims.
  /// A nonzero `local_port` pins the TCP source port (StorM pins it so
  /// per-flow rules can be installed before the first SYN).
  Initiator(net::NetNode& node, net::SocketAddr target, std::string iqn,
            std::uint16_t local_port = 0);

  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  /// Open the TCP connection and perform login.
  void login(LoginCallback done);

  /// Read `sectors` * 512 bytes from sector `lba`.
  void read(std::uint64_t lba, std::uint32_t sectors, ReadCallback done);

  /// Write sector-aligned `data` at sector `lba`.
  void write(std::uint64_t lba, Bytes data, WriteCallback done);

  void logout();

  /// Fired when the session drops with commands outstanding (all pending
  /// callbacks also fire with errors).
  void set_on_failure(FailureCallback cb) { on_failure_ = std::move(cb); }

  /// TCP source port of this session — the attribution hook.
  std::uint16_t source_port() const { return source_port_; }
  const std::string& iqn() const { return iqn_; }
  bool logged_in() const { return logged_in_; }

  std::uint64_t reads_issued() const { return reads_; }
  std::uint64_t writes_issued() const { return writes_; }

 private:
  struct PendingRead {
    Bytes data;
    std::uint32_t expected;
    ReadCallback done;
  };
  struct PendingWrite {
    WriteCallback done;
  };

  void on_data(Bytes bytes);
  void handle_pdu(Pdu pdu);
  void on_closed(Status status);
  void send_pdu(const Pdu& pdu);

  net::NetNode& node_;
  net::SocketAddr target_;
  std::string iqn_;
  std::uint16_t local_port_ = 0;
  net::TcpConnection* conn_ = nullptr;
  StreamParser parser_;
  bool logged_in_ = false;
  bool failed_ = false;
  std::uint16_t source_port_ = 0;
  std::uint32_t next_tag_ = 1;

  LoginCallback login_cb_;
  FailureCallback on_failure_;
  std::map<std::uint32_t, PendingRead> pending_reads_;
  std::map<std::uint32_t, PendingWrite> pending_writes_;

  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace storm::iscsi
