// iSCSI initiator: runs on the *compute host* (as in OpenStack — not in
// the tenant VM), one connection per attached volume. Exposes the login
// source port, reproducing the paper's patched "Login Session" code that
// StorM's connection attribution reads (§III-A).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "iscsi/pdu.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace storm::iscsi {

/// Opt-in session recovery (open-iscsi's replacement_timeout behaviour):
/// when the TCP session drops, re-dial from the *same* source port,
/// re-login, and re-issue every outstanding command instead of failing
/// them. Reads and sector writes are idempotent, so at-least-once
/// re-execution is safe.
struct RecoveryPolicy {
  bool enabled = false;
  /// Consecutive failed reconnect attempts before giving up for good.
  unsigned max_attempts = 8;
  /// Wait between a drop and the next dial.
  sim::Duration reconnect_delay = sim::milliseconds(10);
  /// Command watchdog (open-iscsi's NOP/replacement timeout): if commands
  /// are outstanding and no PDU arrives for this long, the session is
  /// declared dead and torn down so recovery can re-dial. Without it, a
  /// peer that crashed with nothing in flight at the TCP level is
  /// undetectable — TCP only notices loss when it has unacked data.
  sim::Duration response_timeout = sim::milliseconds(500);
};

/// Admission-gate behaviour for new commands (see set_admission_mode).
enum class AdmissionMode {
  kOpen,      // commands enter the chain normally
  kClosed,    // new commands fail fast with kUnavailable (drain/fence)
  kDeferred,  // new commands park in a side queue, invisible to
              // outstanding(), and issue when the gate reopens — the
              // flow-migration gate: the chain drains to empty while the
              // workload keeps issuing, and nothing ever fails
};

class Initiator {
 public:
  using LoginCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Status, Bytes)>;
  using WriteCallback = std::function<void(Status)>;
  using FailureCallback = std::function<void(Status)>;

  /// `target` is the address the initiator dials. StorM's splicing NAT
  /// may transparently redirect the flow; the initiator neither knows nor
  /// cares — exactly the transparency property the paper claims.
  /// A nonzero `local_port` pins the TCP source port (StorM pins it so
  /// per-flow rules can be installed before the first SYN).
  Initiator(net::NetNode& node, net::SocketAddr target, std::string iqn,
            std::uint16_t local_port = 0);

  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  /// Open the TCP connection and perform login.
  void login(LoginCallback done);

  /// Read `sectors` * 512 bytes from sector `lba`.
  void read(std::uint64_t lba, std::uint32_t sectors, ReadCallback done);

  /// Write sector-aligned `data` at sector `lba`.
  void write(std::uint64_t lba, Bytes data, WriteCallback done);

  void logout();

  /// Enable/configure session recovery. With recovery on, commands issued
  /// while disconnected are queued and sent after the next re-login.
  void set_recovery(RecoveryPolicy policy) { recovery_ = policy; }

  /// Fired when the session drops with commands outstanding (all pending
  /// callbacks also fire with errors). With recovery enabled, only fires
  /// once reconnection attempts are exhausted.
  void set_on_failure(FailureCallback cb) { on_failure_ = std::move(cb); }

  /// Admission gate (StorM drain protocol): while closed, new read/write
  /// calls fail fast with kUnavailable instead of entering the chain.
  /// Commands already in flight are unaffected — that is the point: the
  /// chain drains to empty instead of being torn down mid-command.
  void set_admission(bool open) {
    set_admission_mode(open ? AdmissionMode::kOpen : AdmissionMode::kClosed);
  }
  bool admission_open() const { return admission_ == AdmissionMode::kOpen; }

  /// Three-state admission gate. kDeferred (open-iscsi's
  /// queue-during-replacement behaviour) parks new commands without
  /// issuing them — they don't count as outstanding(), so the chain can
  /// drain to empty under a live workload; reopening issues the parked
  /// commands in arrival order. Closing the gate fails the parked
  /// commands (a fence outranks a migration in progress).
  void set_admission_mode(AdmissionMode mode);
  AdmissionMode admission_mode() const { return admission_; }
  /// Commands parked behind a kDeferred gate.
  std::size_t deferred() const { return deferred_.size(); }

  /// Commands issued but not yet responded to.
  std::size_t outstanding() const {
    return pending_reads_.size() + pending_writes_.size();
  }

  /// Abort the transport immediately so session recovery re-dials now
  /// rather than at watchdog expiry. Used after a failover rewires the
  /// chain: the old connection's peer is gone, and every millisecond
  /// spent retransmitting into the void inflates MTTR.
  void kick();

  /// Error every outstanding command back to its caller with `reason`
  /// (fail-closed fencing). The session object itself stays usable; a
  /// later login() may re-establish it.
  void fail_outstanding(Status reason);

  /// TCP source port of this session — the attribution hook.
  std::uint16_t source_port() const { return source_port_; }
  const std::string& iqn() const { return iqn_; }
  bool logged_in() const { return logged_in_; }
  bool recovering() const { return recovering_; }

  std::uint64_t reads_issued() const { return reads_; }
  std::uint64_t writes_issued() const { return writes_; }
  /// Successful session re-establishments.
  std::uint64_t recoveries() const { return recoveries_; }
  const RecoveryPolicy& recovery_policy() const { return recovery_; }

 private:
  struct DeferredOp {
    bool is_write = false;
    std::uint64_t lba = 0;
    std::uint32_t sectors = 0;  // reads
    Bytes data;                 // writes
    ReadCallback read_done;
    WriteCallback write_done;
  };
  struct PendingRead {
    std::uint64_t lba;
    Bytes data;
    std::uint32_t expected;
    ReadCallback done;
    obs::SpanId span = 0;  // root trace span for this command
  };
  struct PendingWrite {
    std::uint64_t lba;
    Buf data;  // retained (by reference) for re-issue after recovery
    WriteCallback done;
    obs::SpanId span = 0;
  };

  obs::SpanId begin_command_span(const char* kind, std::uint32_t tag,
                                 std::uint64_t bytes);
  void end_command_span(obs::SpanId span, std::uint32_t tag,
                        const char* outcome);
  void update_outstanding();

  void dial();
  void reconnect();
  void arm_watchdog();
  void on_watchdog();
  void issue_write(std::uint32_t tag, const PendingWrite& pending);
  void reissue_pending();
  void on_data(Buf bytes);
  void handle_pdu(Pdu pdu);
  void on_closed(Status status);
  void send_pdu(const Pdu& pdu);

  net::NetNode& node_;
  net::SocketAddr target_;
  std::string iqn_;
  std::uint16_t local_port_ = 0;
  net::TcpConnection* conn_ = nullptr;
  StreamParser parser_;
  bool logged_in_ = false;
  bool failed_ = false;
  bool logging_out_ = false;
  bool recovering_ = false;
  AdmissionMode admission_ = AdmissionMode::kOpen;
  std::deque<DeferredOp> deferred_;
  std::uint16_t source_port_ = 0;
  std::uint32_t next_tag_ = 1;
  RecoveryPolicy recovery_;
  unsigned attempts_ = 0;  // consecutive failed recovery attempts
  sim::CancelToken watchdog_;

  LoginCallback login_cb_;
  FailureCallback on_failure_;
  std::map<std::uint32_t, PendingRead> pending_reads_;
  std::map<std::uint32_t, PendingWrite> pending_writes_;

  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t recoveries_ = 0;
  obs::Gauge* tel_outstanding_ = nullptr;  // per-session, lazily resolved
};

}  // namespace storm::iscsi
