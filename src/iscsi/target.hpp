// iSCSI target: serves the volumes of one storage host over TCP port 3260.
// Each inbound connection becomes a Session; a session is bound to one
// volume at login (by IQN), mirroring OpenStack's one-connection-per-
// attached-volume layout that StorM's connection attribution relies on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "block/volume.hpp"
#include "iscsi/pdu.hpp"
#include "net/tcp.hpp"

namespace storm::iscsi {

class Target {
 public:
  Target(net::NetNode& node, block::VolumeManager& volumes,
         std::uint16_t port = kIscsiPort);

  Target(const Target&) = delete;
  Target& operator=(const Target&) = delete;

  /// Begin accepting sessions.
  void start();

  /// Abort all sessions logged into `iqn` (failure injection: the paper
  /// injects replica failure "by closing the iSCSI connection").
  std::size_t close_sessions_for(const std::string& iqn);

  struct SessionInfo {
    std::string iqn;
    net::FourTuple tuple;  // as seen by the target
  };
  std::vector<SessionInfo> sessions() const;

  std::uint64_t commands_served() const { return commands_; }

 private:
  struct Session {
    net::TcpConnection* conn = nullptr;
    StreamParser parser;
    std::string iqn;
    // The flow's source port as the target sees it — preserved along the
    // whole spliced chain, so it keys the command's root trace span.
    // Cached at accept: the conn pointer may be gone by response time.
    std::uint16_t src_port = 0;
    block::Volume* volume = nullptr;
    // In-progress write burst per task tag. Data-Out segments are held by
    // reference (no coalesce) and handed to the disk as a gather write.
    struct WriteBurst {
      std::uint64_t lba = 0;
      std::uint32_t expected = 0;
      BufChain chunks;
      std::size_t bytes = 0;  // == chain_size(chunks)
    };
    std::map<std::uint32_t, WriteBurst> writes;
    bool closed = false;
  };

  void on_accept(net::TcpConnection& conn);
  void on_data(Session& session, Buf bytes);
  void handle_pdu(Session& session, Pdu pdu);
  void handle_command(Session& session, const Pdu& pdu);
  void complete_write(Session& session, std::uint32_t task_tag);
  void send_pdu(Session& session, const Pdu& pdu);

  void trace_event(const Session& session, std::uint32_t tag,
                   const char* label, std::uint64_t value);
  void command_started(const Session& session, const Pdu& pdu);
  void command_finished(const Session& session, std::uint32_t tag);

  net::NetNode& node_;
  block::VolumeManager& volumes_;
  std::uint16_t port_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t commands_ = 0;
  std::uint64_t inflight_ = 0;  // commands received, response not yet sent
};

}  // namespace storm::iscsi
