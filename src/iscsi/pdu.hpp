// Simplified iSCSI PDU layer.
//
// The PDU set mirrors the subset of RFC 7143 that StorM's data path
// exercises: login/logout, SCSI read/write commands, streamed Data-In /
// Data-Out segments, and SCSI responses. Framing is a u32 length prefix;
// the StreamParser reassembles PDUs from arbitrary TCP segmentation —
// the same parser is reused by the middle-box interception API (the
// paper reuses Open-iSCSI's parsing logic the same way).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/buf.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace storm::iscsi {

/// Data segments of large I/Os are streamed in chunks of at most this
/// many bytes (MaxRecvDataSegmentLength).
inline constexpr std::uint32_t kMaxDataSegment = 8 * 1024;

/// Default iSCSI target port.
inline constexpr std::uint16_t kIscsiPort = 3260;

enum class Opcode : std::uint8_t {
  kNopOut = 0x00,
  kScsiCommand = 0x01,
  kLoginRequest = 0x03,
  kDataOut = 0x05,
  kLogoutRequest = 0x06,
  kNopIn = 0x20,
  kScsiResponse = 0x21,
  kLoginResponse = 0x23,
  kDataIn = 0x25,
  kLogoutResponse = 0x26,
  kReject = 0x3F,
};

const char* to_string(Opcode op);

// Pdu::flags bits.
inline constexpr std::uint8_t kFlagFinal = 0x01;  // last segment of a burst
inline constexpr std::uint8_t kFlagRead = 0x02;   // SCSI command direction

// Pdu::status values.
inline constexpr std::uint8_t kStatusGood = 0x00;
inline constexpr std::uint8_t kStatusCheckCondition = 0x02;
inline constexpr std::uint8_t kStatusLoginFailed = 0x10;

struct Pdu {
  Opcode opcode = Opcode::kNopOut;
  std::uint8_t flags = 0;
  std::uint8_t status = kStatusGood;
  std::uint32_t task_tag = 0;
  std::uint64_t lba = 0;             // sectors
  std::uint32_t transfer_length = 0; // bytes (SCSI command)
  std::uint32_t data_offset = 0;     // bytes into the burst (Data-In/Out)
  std::string text;                  // login parameters ("iqn=...")
  Buf data;                          // data segment (refcounted view)
  std::uint32_t data_digest = 0;     // CRC32 of data (0 when data empty)

  bool is_final() const { return flags & kFlagFinal; }
  bool is_read() const { return flags & kFlagRead; }

  std::string summary() const;
};

/// Serialized sizes (u32 length prefix included for serialized_size).
std::size_t serialized_body_size(const Pdu& pdu);
std::size_t serialized_size(const Pdu& pdu);

/// Serialize with the u32 length prefix included (contiguous buffer,
/// reserved exactly once). The data segment is copied; the zero-copy data
/// path uses serialize_chunks instead.
Bytes serialize(const Pdu& pdu);

/// Zero-copy serialization: [prefix + headers + text, data, digests].
/// The middle chunk *references* pdu.data — no payload byte is copied —
/// and the concatenation is byte-identical to serialize(). Feed the chain
/// to TcpConnection::send(BufChain).
BufChain serialize_chunks(const Pdu& pdu);

/// Parse one PDU from `body` (the bytes after the length prefix).
/// Returns a parse-error status for malformed bodies. The Buf form sets
/// pdu.data as an O(1) slice of `body`; the span form copies.
Result<Pdu> parse_pdu(Buf body);
Result<Pdu> parse_pdu(std::span<const std::uint8_t> body);

/// Incremental reassembly of PDUs from a TCP byte stream. Buffers the
/// fed chunks by reference; a PDU body that lands inside a single chunk
/// is parsed out of a zero-copy slice, one that straddles chunk
/// boundaries is gathered with a single counted copy.
class StreamParser {
 public:
  /// Feed stream bytes; appends any completed PDUs to `out`.
  /// Returns an error (and stops consuming) on a malformed PDU.
  Status feed(Buf bytes, std::vector<Pdu>& out);
  Status feed(std::span<const std::uint8_t> bytes, std::vector<Pdu>& out) {
    return feed(Buf::copy(bytes), out);
  }

  /// Bytes buffered awaiting a complete PDU.
  std::size_t pending_bytes() const { return pending_; }

 private:
  std::uint32_t peek_u32() const;
  Buf gather(std::size_t skip, std::size_t n) const;
  void consume(std::size_t n);

  std::deque<Buf> chunks_;
  std::size_t head_ = 0;     // consumed bytes of chunks_.front()
  std::size_t pending_ = 0;  // unconsumed bytes across all chunks
};

// Convenience constructors for the PDUs the data path uses.
Pdu make_login_request(const std::string& iqn);
Pdu make_login_response(std::uint8_t status);
Pdu make_read_command(std::uint32_t task_tag, std::uint64_t lba,
                      std::uint32_t length_bytes);
Pdu make_write_command(std::uint32_t task_tag, std::uint64_t lba,
                       std::uint32_t length_bytes);
Pdu make_data_out(std::uint32_t task_tag, std::uint32_t offset, Buf data,
                  bool final);
Pdu make_data_in(std::uint32_t task_tag, std::uint32_t offset, Buf data,
                 bool final);
Pdu make_scsi_response(std::uint32_t task_tag, std::uint8_t status);

}  // namespace storm::iscsi
