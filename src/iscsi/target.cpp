#include "iscsi/target.hpp"

#include "common/log.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"

namespace storm::iscsi {

Target::Target(net::NetNode& node, block::VolumeManager& volumes,
               std::uint16_t port)
    : node_(node), volumes_(volumes), port_(port) {}

void Target::start() {
  node_.tcp().listen(port_,
                     [this](net::TcpConnection& conn) { on_accept(conn); });
}

void Target::trace_event(const Session& session, std::uint32_t tag,
                         const char* label, std::uint64_t value) {
  obs::Registry& reg = node_.executor().telemetry();
  obs::SpanId root =
      reg.lookup(obs::command_trace_key(session.src_port, tag));
  if (root != 0) reg.add_event(root, label, value);
}

void Target::command_started(const Session& session, const Pdu& pdu) {
  obs::Registry& reg = node_.executor().telemetry();
  reg.counter("iscsi.target.commands").add();
  ++inflight_;
  reg.gauge("iscsi.target.outstanding").set(
      static_cast<std::int64_t>(inflight_));
  trace_event(session, pdu.task_tag, "target.cmd", pdu.transfer_length);
}

void Target::command_finished(const Session& session, std::uint32_t tag) {
  if (inflight_ > 0) --inflight_;
  node_.executor().telemetry().gauge("iscsi.target.outstanding").set(
      static_cast<std::int64_t>(inflight_));
  trace_event(session, tag, "target.rsp", 0);
}

void Target::on_accept(net::TcpConnection& conn) {
  auto session = std::make_unique<Session>();
  session->conn = &conn;
  session->src_port = conn.remote().port;
  Session* raw = session.get();
  sessions_.push_back(std::move(session));
  conn.set_on_data([this, raw](Buf bytes) { on_data(*raw, std::move(bytes)); });
  conn.set_on_closed([raw](Status) { raw->closed = true; });
}

void Target::on_data(Session& session, Buf bytes) {
  std::vector<Pdu> pdus;
  Status status = session.parser.feed(std::move(bytes), pdus);
  if (!status.is_ok()) {
    log_warn("iscsi-tgt") << node_.name()
                          << ": protocol error: " << status.to_string();
    session.conn->abort();
    session.closed = true;
    return;
  }
  for (auto& pdu : pdus) handle_pdu(session, std::move(pdu));
}

void Target::handle_pdu(Session& session, Pdu pdu) {
  switch (pdu.opcode) {
    case Opcode::kLoginRequest: {
      std::string iqn = pdu.text.starts_with("iqn=") ? pdu.text.substr(4)
                                                     : pdu.text;
      auto volume = volumes_.find_by_iqn(iqn);
      if (!volume.is_ok()) {
        log_warn("iscsi-tgt") << "login failed for " << iqn;
        send_pdu(session, make_login_response(kStatusLoginFailed));
        return;
      }
      session.iqn = iqn;
      session.volume = volume.value();
      send_pdu(session, make_login_response(kStatusGood));
      return;
    }
    case Opcode::kScsiCommand:
      handle_command(session, pdu);
      return;
    case Opcode::kDataOut: {
      auto it = session.writes.find(pdu.task_tag);
      if (it == session.writes.end()) {
        send_pdu(session, make_scsi_response(pdu.task_tag,
                                             kStatusCheckCondition));
        return;
      }
      Session::WriteBurst& burst = it->second;
      if (pdu.data_offset != burst.bytes) {
        log_warn("iscsi-tgt") << "out-of-order Data-Out";
        command_finished(session, pdu.task_tag);
        send_pdu(session, make_scsi_response(pdu.task_tag,
                                             kStatusCheckCondition));
        session.writes.erase(it);
        return;
      }
      burst.bytes += pdu.data.size();
      if (!pdu.data.empty()) burst.chunks.push_back(std::move(pdu.data));
      if (pdu.is_final() || burst.bytes >= burst.expected) {
        complete_write(session, pdu.task_tag);
      }
      return;
    }
    case Opcode::kLogoutRequest: {
      Pdu resp;
      resp.opcode = Opcode::kLogoutResponse;
      resp.task_tag = pdu.task_tag;
      send_pdu(session, resp);
      session.conn->close();
      return;
    }
    case Opcode::kNopOut: {
      Pdu resp;
      resp.opcode = Opcode::kNopIn;
      resp.task_tag = pdu.task_tag;
      send_pdu(session, resp);
      return;
    }
    default: {
      Pdu reject;
      reject.opcode = Opcode::kReject;
      reject.task_tag = pdu.task_tag;
      send_pdu(session, reject);
      return;
    }
  }
}

void Target::handle_command(Session& session, const Pdu& pdu) {
  if (session.volume == nullptr) {
    send_pdu(session, make_scsi_response(pdu.task_tag, kStatusCheckCondition));
    return;
  }
  ++commands_;
  command_started(session, pdu);
  if (pdu.is_read()) {
    const std::uint32_t sectors = pdu.transfer_length / block::kSectorSize;
    session.volume->disk().read(
        pdu.lba, sectors,
        [this, &session, tag = pdu.task_tag](Status status, Bytes data) {
          command_finished(session, tag);
          if (session.closed) return;
          if (!status.is_ok()) {
            send_pdu(session, make_scsi_response(tag, kStatusCheckCondition));
            return;
          }
          // Stream the data in bounded Data-In segments — each a view into
          // the single buffer returned by the disk.
          Buf whole(std::move(data));
          std::uint32_t offset = 0;
          while (offset < whole.size()) {
            std::uint32_t n = std::min<std::uint32_t>(
                kMaxDataSegment,
                static_cast<std::uint32_t>(whole.size()) - offset);
            bool final = offset + n == whole.size();
            send_pdu(session,
                     make_data_in(tag, offset, whole.slice(offset, n), final));
            offset += n;
          }
          send_pdu(session, make_scsi_response(tag, kStatusGood));
        });
    return;
  }
  // Write command: data arrives in Data-Out PDUs (plus any immediate data).
  Session::WriteBurst burst;
  burst.lba = pdu.lba;
  burst.expected = pdu.transfer_length;
  if (!pdu.data.empty()) {  // immediate data, if any (held by reference)
    burst.bytes = pdu.data.size();
    burst.chunks.push_back(pdu.data);
  }
  session.writes[pdu.task_tag] = std::move(burst);
  if (pdu.is_final() ||
      session.writes[pdu.task_tag].bytes >= pdu.transfer_length) {
    complete_write(session, pdu.task_tag);
  }
}

void Target::complete_write(Session& session, std::uint32_t task_tag) {
  auto it = session.writes.find(task_tag);
  Session::WriteBurst burst = std::move(it->second);
  session.writes.erase(it);
  if (burst.bytes != burst.expected) {
    command_finished(session, task_tag);
    send_pdu(session, make_scsi_response(task_tag, kStatusCheckCondition));
    return;
  }
  session.volume->disk().write_gather(
      burst.lba, std::move(burst.chunks),
      [this, &session, task_tag](Status status) {
        command_finished(session, task_tag);
        if (session.closed) return;
        send_pdu(session,
                 make_scsi_response(task_tag, status.is_ok()
                                                  ? kStatusGood
                                                  : kStatusCheckCondition));
      });
}

void Target::send_pdu(Session& session, const Pdu& pdu) {
  if (session.closed) return;
  session.conn->send(serialize_chunks(pdu));
}

std::size_t Target::close_sessions_for(const std::string& iqn) {
  std::size_t closed = 0;
  for (auto& session : sessions_) {
    if (!session->closed && session->iqn == iqn) {
      session->conn->abort();
      session->closed = true;
      ++closed;
    }
  }
  return closed;
}

std::vector<Target::SessionInfo> Target::sessions() const {
  std::vector<SessionInfo> out;
  for (const auto& session : sessions_) {
    if (session->closed || session->iqn.empty()) continue;
    out.push_back(SessionInfo{session->iqn, session->conn->four_tuple()});
  }
  return out;
}

}  // namespace storm::iscsi
