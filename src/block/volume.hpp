// Volume management: the Cinder-like control-plane object that names a
// block device, assigns its IQN, and tracks attachment state.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "block/sim_disk.hpp"
#include "common/status.hpp"

namespace storm::block {

struct VolumeId {
  std::uint64_t value = 0;
  auto operator<=>(const VolumeId&) const = default;
};

class Volume {
 public:
  Volume(VolumeId id, std::string name, std::string iqn,
         std::unique_ptr<SimDisk> disk)
      : id_(id), name_(std::move(name)), iqn_(std::move(iqn)),
        disk_(std::move(disk)) {}

  VolumeId id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::string& iqn() const { return iqn_; }
  SimDisk& disk() { return *disk_; }

  bool attached() const { return attached_; }
  void set_attached(bool attached) { attached_ = attached; }

 private:
  VolumeId id_;
  std::string name_;
  std::string iqn_;
  std::unique_ptr<SimDisk> disk_;
  bool attached_ = false;
};

/// Volume service for one storage host ("cinder-volume"): creates volumes
/// on the host's physical pool and resolves IQNs for the iSCSI target.
class VolumeManager {
 public:
  /// `executor` places the backing SimDisks (converts implicitly from
  /// Simulator&, i.e. partition 0); the Cloud passes the owning storage
  /// host's partition executor.
  VolumeManager(sim::Executor executor, std::string host_name,
                std::uint64_t pool_sectors, DiskProfile profile = {})
      : sim_(executor), host_name_(std::move(host_name)),
        pool_sectors_(pool_sectors), profile_(profile) {}

  /// Create a volume of `sectors`; fails when the pool is exhausted.
  Result<Volume*> create(const std::string& name, std::uint64_t sectors);

  Result<Volume*> find_by_iqn(const std::string& iqn);
  Result<Volume*> find_by_name(const std::string& name);
  Status destroy(const std::string& name);

  std::uint64_t free_sectors() const { return pool_sectors_ - used_sectors_; }
  std::size_t volume_count() const { return volumes_.size(); }

 private:
  sim::Executor sim_;
  std::string host_name_;
  std::uint64_t pool_sectors_;
  std::uint64_t used_sectors_ = 0;
  DiskProfile profile_;
  std::uint64_t next_id_ = 1;
  std::map<std::string, std::unique_ptr<Volume>> volumes_;  // by name
};

}  // namespace storm::block
