#include "block/sim_disk.hpp"

#include <algorithm>

namespace storm::block {

sim::Time SimDisk::schedule(std::uint64_t bytes) {
  const auto service = profile_.base_latency +
                       static_cast<sim::Duration>(
                           bytes * 1'000'000'000ull /
                           profile_.bytes_per_second);
  // Earliest-free slot (NCQ-style limited concurrency).
  auto slot = std::min_element(slot_free_.begin(), slot_free_.end());
  sim::Time start = std::max(sim_.now(), *slot);
  *slot = start + service;
  return *slot;
}

void SimDisk::read(std::uint64_t lba, std::uint32_t count, ReadCallback done) {
  Status status = check_range(lba, count);
  if (!status.is_ok()) {
    done(status, {});
    return;
  }
  ++reads_;
  sim::Time completion = schedule(count * kSectorSize);
  sim_.schedule(completion, [this, lba, count, done = std::move(done)] {
    done(Status::ok(), store_->read_sync(lba, count));
  });
}

void SimDisk::write(std::uint64_t lba, Bytes data, WriteCallback done) {
  if (data.size() % kSectorSize != 0) {
    done(error(ErrorCode::kInvalidArgument, "unaligned write size"));
    return;
  }
  Status status = check_range(lba, data.size() / kSectorSize);
  if (!status.is_ok()) {
    done(status);
    return;
  }
  ++writes_;
  sim::Time completion = schedule(data.size());
  sim_.schedule(completion,
          [this, lba, d = std::move(data), done = std::move(done)]() mutable {
            store_->write_sync(lba, d);
            done(Status::ok());
          });
}

void SimDisk::write_gather(std::uint64_t lba, BufChain chunks,
                           WriteCallback done) {
  const std::size_t total = chain_size(chunks);
  if (total % kSectorSize != 0) {
    done(error(ErrorCode::kInvalidArgument, "unaligned write size"));
    return;
  }
  Status status = check_range(lba, total / kSectorSize);
  if (!status.is_ok()) {
    done(status);
    return;
  }
  ++writes_;
  // Timing is identical to the contiguous write of the same size; the
  // chunks hold their payload by reference until the modeled completion.
  sim::Time completion = schedule(total);
  sim_.schedule(completion,
          [this, lba, c = std::move(chunks), done = std::move(done)]() mutable {
            store_->write_sync_chain(lba, c);
            done(Status::ok());
          });
}

}  // namespace storm::block
