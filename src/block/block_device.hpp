// Block device abstraction. All I/O is asynchronous (completion
// callbacks), matching the event-driven simulation; MemDisk completes
// inline, SimDisk after a modeled service time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/buf.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace storm::block {

inline constexpr std::uint32_t kSectorSize = 512;

class BlockDevice {
 public:
  using ReadCallback = std::function<void(Status, Bytes)>;
  using WriteCallback = std::function<void(Status)>;

  virtual ~BlockDevice() = default;

  /// Read `count` sectors starting at `lba`.
  virtual void read(std::uint64_t lba, std::uint32_t count,
                    ReadCallback done) = 0;

  /// Write `data` (must be sector-aligned in size) starting at `lba`.
  virtual void write(std::uint64_t lba, Bytes data, WriteCallback done) = 0;

  /// Scatter-gather write: the chunks are stored consecutively from
  /// `lba`; their total size must be sector-aligned. The default
  /// implementation flattens the chain (one counted copy) and calls
  /// write(); devices with direct store access override it to copy each
  /// chunk straight into place, so a burst assembled from wire segments
  /// never needs an intermediate contiguous buffer.
  virtual void write_gather(std::uint64_t lba, BufChain chunks,
                            WriteCallback done);

  virtual std::uint64_t num_sectors() const = 0;

  std::uint64_t size_bytes() const { return num_sectors() * kSectorSize; }

 protected:
  /// Validate an I/O range; shared by implementations.
  Status check_range(std::uint64_t lba, std::uint64_t sectors) const;
};

/// Instant in-memory disk; also the backing store for SimDisk.
class MemDisk : public BlockDevice {
 public:
  explicit MemDisk(std::uint64_t sectors)
      : sectors_(sectors), data_(sectors * kSectorSize, 0) {}

  void read(std::uint64_t lba, std::uint32_t count, ReadCallback done) override;
  void write(std::uint64_t lba, Bytes data, WriteCallback done) override;
  void write_gather(std::uint64_t lba, BufChain chunks,
                    WriteCallback done) override;
  std::uint64_t num_sectors() const override { return sectors_; }

  /// Synchronous accessors for tests, mkfs and the semantic engine's
  /// initial filesystem scan (dumpfs-style).
  Bytes read_sync(std::uint64_t lba, std::uint32_t count) const;
  void write_sync(std::uint64_t lba, std::span<const std::uint8_t> data);
  /// Gather form: chunks land back-to-back starting at `lba`.
  void write_sync_chain(std::uint64_t lba, const BufChain& chunks);

 private:
  std::uint64_t sectors_;
  Bytes data_;
};

}  // namespace storm::block
