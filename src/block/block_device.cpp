#include "block/block_device.hpp"

#include <cstring>
#include <stdexcept>

namespace storm::block {

Status BlockDevice::check_range(std::uint64_t lba,
                                std::uint64_t sectors) const {
  if (lba + sectors > num_sectors() || lba + sectors < lba) {
    return error(ErrorCode::kInvalidArgument,
                 "I/O beyond device end: lba=" + std::to_string(lba) +
                     " sectors=" + std::to_string(sectors));
  }
  return Status::ok();
}

void MemDisk::read(std::uint64_t lba, std::uint32_t count, ReadCallback done) {
  Status status = check_range(lba, count);
  if (!status.is_ok()) {
    done(status, {});
    return;
  }
  done(Status::ok(), read_sync(lba, count));
}

void MemDisk::write(std::uint64_t lba, Bytes data, WriteCallback done) {
  if (data.size() % kSectorSize != 0) {
    done(error(ErrorCode::kInvalidArgument, "unaligned write size"));
    return;
  }
  Status status = check_range(lba, data.size() / kSectorSize);
  if (!status.is_ok()) {
    done(status);
    return;
  }
  write_sync(lba, data);
  done(Status::ok());
}

void BlockDevice::write_gather(std::uint64_t lba, BufChain chunks,
                               WriteCallback done) {
  // Fallback for devices without direct store access: flatten (a counted
  // copy) and take the contiguous path.
  write(lba, chain_to_bytes(chunks), std::move(done));
}

void MemDisk::write_gather(std::uint64_t lba, BufChain chunks,
                           WriteCallback done) {
  const std::size_t total = chain_size(chunks);
  if (total % kSectorSize != 0) {
    done(error(ErrorCode::kInvalidArgument, "unaligned write size"));
    return;
  }
  Status status = check_range(lba, total / kSectorSize);
  if (!status.is_ok()) {
    done(status);
    return;
  }
  write_sync_chain(lba, chunks);
  done(Status::ok());
}

Bytes MemDisk::read_sync(std::uint64_t lba, std::uint32_t count) const {
  if (lba + count > sectors_) {
    throw std::out_of_range("MemDisk::read_sync beyond device");
  }
  auto begin = data_.begin() + static_cast<std::ptrdiff_t>(lba * kSectorSize);
  return Bytes(begin, begin + static_cast<std::ptrdiff_t>(count) * kSectorSize);
}

void MemDisk::write_sync(std::uint64_t lba,
                         std::span<const std::uint8_t> data) {
  if (data.size() % kSectorSize != 0 ||
      lba + data.size() / kSectorSize > sectors_) {
    throw std::out_of_range("MemDisk::write_sync bad range");
  }
  std::memcpy(data_.data() + lba * kSectorSize, data.data(), data.size());
}

void MemDisk::write_sync_chain(std::uint64_t lba, const BufChain& chunks) {
  const std::size_t total = chain_size(chunks);
  if (total % kSectorSize != 0 || lba + total / kSectorSize > sectors_) {
    throw std::out_of_range("MemDisk::write_sync_chain bad range");
  }
  std::uint8_t* out = data_.data() + lba * kSectorSize;
  for (const Buf& chunk : chunks) {
    if (chunk.empty()) continue;
    std::memcpy(out, chunk.data(), chunk.size());
    out += chunk.size();
  }
}

}  // namespace storm::block
