// SimDisk: a latency/throughput-modeled disk over a MemDisk store.
// Service time = base latency + size/bandwidth, FIFO-queued, mimicking
// the single SATA volume host in the paper's testbed.
#pragma once

#include <memory>

#include "block/block_device.hpp"
#include "sim/simulator.hpp"

namespace storm::block {

struct DiskProfile {
  sim::Duration base_latency = sim::microseconds(100);
  std::uint64_t bytes_per_second = 400ull * 1024 * 1024;
  unsigned queue_depth = 8;  // concurrent in-service operations
};

class SimDisk : public BlockDevice {
 public:
  SimDisk(sim::Executor executor, std::uint64_t sectors,
          DiskProfile profile = {})
      : sim_(executor), store_(std::make_unique<MemDisk>(sectors)),
        profile_(profile), slot_free_(profile.queue_depth, 0) {}

  void read(std::uint64_t lba, std::uint32_t count, ReadCallback done) override;
  void write(std::uint64_t lba, Bytes data, WriteCallback done) override;
  void write_gather(std::uint64_t lba, BufChain chunks,
                    WriteCallback done) override;
  std::uint64_t num_sectors() const override { return store_->num_sectors(); }

  /// Direct access to the backing store (mkfs, test inspection).
  MemDisk& store() { return *store_; }
  const MemDisk& store() const { return *store_; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  /// Completion time for an op of `bytes`, honoring queue_depth slots.
  sim::Time schedule(std::uint64_t bytes);

  sim::Executor sim_;
  std::unique_ptr<MemDisk> store_;
  DiskProfile profile_;
  std::vector<sim::Time> slot_free_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace storm::block
