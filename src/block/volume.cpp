#include "block/volume.hpp"

namespace storm::block {

Result<Volume*> VolumeManager::create(const std::string& name,
                                      std::uint64_t sectors) {
  if (volumes_.contains(name)) {
    return error(ErrorCode::kAlreadyExists, "volume exists: " + name);
  }
  if (sectors == 0) {
    return error(ErrorCode::kInvalidArgument, "zero-size volume");
  }
  if (used_sectors_ + sectors > pool_sectors_) {
    return error(ErrorCode::kOutOfSpace,
                 "pool exhausted on host " + host_name_);
  }
  VolumeId id{next_id_++};
  // IQN naming mirrors the OpenStack convention:
  // iqn.2016-01.org.storm:<host>:volume-<id>
  std::string iqn = "iqn.2016-01.org.storm:" + host_name_ + ":volume-" +
                    std::to_string(id.value);
  auto volume = std::make_unique<Volume>(
      id, name, iqn, std::make_unique<SimDisk>(sim_, sectors, profile_));
  Volume* ptr = volume.get();
  volumes_[name] = std::move(volume);
  used_sectors_ += sectors;
  return ptr;
}

Result<Volume*> VolumeManager::find_by_iqn(const std::string& iqn) {
  for (auto& [name, volume] : volumes_) {
    if (volume->iqn() == iqn) return volume.get();
  }
  return error(ErrorCode::kNotFound, "no volume with IQN " + iqn);
}

Result<Volume*> VolumeManager::find_by_name(const std::string& name) {
  auto it = volumes_.find(name);
  if (it == volumes_.end()) {
    return error(ErrorCode::kNotFound, "no volume named " + name);
  }
  return it->second.get();
}

Status VolumeManager::destroy(const std::string& name) {
  auto it = volumes_.find(name);
  if (it == volumes_.end()) {
    return error(ErrorCode::kNotFound, "no volume named " + name);
  }
  if (it->second->attached()) {
    return error(ErrorCode::kFailedPrecondition,
                 "volume attached: " + name);
  }
  used_sectors_ -= it->second->disk().num_sectors();
  volumes_.erase(it);
  return Status::ok();
}

}  // namespace storm::block
