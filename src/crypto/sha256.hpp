// SHA-256 (FIPS 180-4). Used for replica integrity digests and test
// fixtures (content-addressed verification of end-to-end data paths).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace storm::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> h_;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

Sha256Digest sha256(std::span<const std::uint8_t> data);
std::string digest_hex(const Sha256Digest& digest);

}  // namespace storm::crypto
