// ChaCha20 stream cipher (RFC 8439). Used as the "stream cipher" service
// the paper runs inside the middle-box for the Figure 5/6/8/9 benches
// ("operates on each bit of the raw data").
#pragma once

#include <cstdint>
#include <span>

namespace storm::crypto {

/// XOR `in` with the ChaCha20 keystream into `out` (encrypt == decrypt).
/// key is 32 bytes, nonce is 12 bytes; `counter` is the initial block
/// counter (use the sector/offset so random access stays consistent).
void chacha20_crypt(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> nonce, std::uint32_t counter,
                    std::span<const std::uint8_t> in,
                    std::span<std::uint8_t> out);

/// One 64-byte keystream block (exposed for test vectors).
void chacha20_block(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> nonce, std::uint32_t counter,
                    std::uint8_t out[64]);

}  // namespace storm::crypto
