// AES block cipher (FIPS 197) with CTR and XTS modes, implemented from
// scratch. This is the cipher the encryption middle-box service applies
// per sector, mirroring the paper's dm-crypt AES-256 setup.
//
// Not constant-time (table based); acceptable for a simulation/research
// codebase, noted here per standard disclosure practice.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace storm::crypto {

/// AES with a 128- or 256-bit key. Encrypt/decrypt a single 16-byte block.
class Aes {
 public:
  /// key.size() must be 16 or 32 bytes.
  explicit Aes(std::span<const std::uint8_t> key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_;                                  // 10 (AES-128) or 14 (AES-256)
  std::array<std::uint8_t, 16 * 15> round_keys_{};  // (rounds+1) * 16
};

/// CTR mode keystream: out[i] = in[i] XOR AES(counter_block(i)).
/// Encryption and decryption are the same operation.
void aes_ctr_crypt(const Aes& cipher, const std::uint8_t iv[16],
                   std::span<const std::uint8_t> in,
                   std::span<std::uint8_t> out);

/// XTS-AES for sector storage (IEEE 1619, without ciphertext stealing:
/// data length must be a multiple of 16 bytes, which holds for 512-byte
/// sectors). Uses two independent keys: `data_key` for the blocks and
/// `tweak_key` to encrypt the sector number into the initial tweak.
class AesXts {
 public:
  /// Each key is 16 or 32 bytes (both must be the same size).
  AesXts(std::span<const std::uint8_t> data_key,
         std::span<const std::uint8_t> tweak_key);

  void encrypt_sector(std::uint64_t sector, std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out) const;
  void decrypt_sector(std::uint64_t sector, std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out) const;

 private:
  void crypt(bool encrypt, std::uint64_t sector,
             std::span<const std::uint8_t> in,
             std::span<std::uint8_t> out) const;

  Aes data_cipher_;
  Aes tweak_cipher_;
};

}  // namespace storm::crypto
